// Command streamtop is a polling terminal dashboard for a running
// admissiond (or any server exposing the internal/server API plus
// /metrics). Each refresh it shows the live decision pipeline at a
// glance: snapshot generation and generation rate, total utility,
// warm/cold solve counts, decision-latency quantiles estimated from
// the streamopt_decision_latency_seconds histogram, per-commodity
// admitted rates, and the most recent admitted↔rejected flips with the
// trace ID of the mutation batch that caused each one (paste it into
// /debug/spans?trace=… to see the full decision lifecycle). Against a
// sharded daemon (admissiond -shards N) it adds a per-shard table:
// advance rate, last-solve latency, gradient iterations, owned
// commodities, and price-exchange staleness per solver shard.
//
//	go run ./cmd/admissiond -addr :8080 &
//	go run ./cmd/streamtop -addr localhost:8080 -interval 1s
//
// -count bounds the number of refreshes (0 = until interrupted) and
// -plain suppresses the ANSI clear between frames, for piping to a
// file or for dumb terminals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// cliConfig carries every flag so tests can drive realMain directly.
type cliConfig struct {
	addr     string
	interval time.Duration
	count    int
	plain    bool
	flips    int

	out io.Writer // defaults to stdout
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", "localhost:8080", "admission server host:port")
	flag.DurationVar(&cfg.interval, "interval", 2*time.Second, "poll interval")
	flag.IntVar(&cfg.count, "count", 0, "refreshes before exiting (0 = run until interrupted)")
	flag.BoolVar(&cfg.plain, "plain", false, "no ANSI clear between frames (for piping)")
	flag.IntVar(&cfg.flips, "flips", 8, "recent admission flips shown")
	flag.Parse()
	if err := realMain(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "streamtop:", err)
		os.Exit(1)
	}
}

// admittedView mirrors the GET /v1/admitted payload.
type admittedView struct {
	Generation  int64   `json:"generation"`
	Utility     float64 `json:"utility"`
	Commodities []struct {
		Name     string  `json:"name"`
		Offered  float64 `json:"offered"`
		Admitted float64 `json:"admitted"`
		Utility  float64 `json:"utility"`
	} `json:"commodities"`
}

// flipsView mirrors the GET /v1/flips payload.
type flipsView struct {
	Flips []struct {
		Generation int64     `json:"generation"`
		Commodity  string    `json:"commodity"`
		Admitted   bool      `json:"admitted"`
		Rate       float64   `json:"rate"`
		Offered    float64   `json:"offered"`
		Trace      string    `json:"trace"`
		At         time.Time `json:"at"`
	} `json:"flips"`
}

func realMain(cfg cliConfig) error {
	if cfg.out == nil {
		cfg.out = os.Stdout
	}
	base := cfg.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	var prevGen int64
	var prevAt time.Time
	var prevMetrics metricSet
	for i := 0; cfg.count == 0 || i < cfg.count; i++ {
		if i > 0 {
			time.Sleep(cfg.interval)
		}
		frame, gen, metrics, err := render(client, base, cfg, prevGen, prevAt, prevMetrics)
		if err != nil {
			return err
		}
		if !cfg.plain {
			fmt.Fprint(cfg.out, "\x1b[H\x1b[2J")
		}
		fmt.Fprint(cfg.out, frame)
		prevGen, prevAt, prevMetrics = gen, time.Now(), metrics
	}
	return nil
}

// render polls the server once and formats one frame, returning the
// generation and metric set observed so the caller can derive rates on
// the next refresh.
func render(client *http.Client, base string, cfg cliConfig, prevGen int64, prevAt time.Time, prevMetrics metricSet) (string, int64, metricSet, error) {
	var adm admittedView
	if err := getJSON(client, base+"/v1/admitted", &adm); err != nil {
		return "", 0, nil, err
	}
	var fl flipsView
	if err := getJSON(client, base+"/v1/flips", &fl); err != nil {
		return "", 0, nil, err
	}
	metrics, err := getMetrics(client, base+"/metrics")
	if err != nil {
		return "", 0, nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "streamtop  %s  %s\n\n", cfg.addr, time.Now().Format(time.RFC3339))

	genRate := ""
	if !prevAt.IsZero() {
		if dt := time.Since(prevAt).Seconds(); dt > 0 {
			genRate = fmt.Sprintf("  (%.2f gen/s)", float64(adm.Generation-prevGen)/dt)
		}
	}
	warm := metrics.value(`streamopt_server_solves_total{start="warm"}`)
	cold := metrics.value(`streamopt_server_solves_total{start="cold"}`)
	fmt.Fprintf(&b, "generation %d%s   utility %.4f   solves %.0f (warm %.0f / cold %.0f)\n",
		adm.Generation, genRate, adm.Utility, warm+cold, warm, cold)

	count := metrics.value("streamopt_decision_latency_seconds_count")
	buckets := metrics.histogram("streamopt_decision_latency_seconds_bucket")
	fmt.Fprintf(&b, "decisions %.0f   latency p50 %s  p95 %s  p99 %s   spans %.0f\n",
		count,
		fmtDur(quantile(buckets, count, 0.50)),
		fmtDur(quantile(buckets, count, 0.95)),
		fmtDur(quantile(buckets, count, 0.99)),
		metrics.value("streamopt_spans_total"))

	// Runtime telemetry (present when the daemon runs the sampler).
	if metrics.has("streamopt_go_goroutines") {
		fmt.Fprintf(&b, "runtime    goroutines %.0f   heap %s   gc %.0f (%.1fms paused)\n",
			metrics.value("streamopt_go_goroutines"),
			fmtBytes(metrics.value("streamopt_go_heap_alloc_bytes")),
			metrics.value("streamopt_go_gcs_total"),
			1000*metrics.value("streamopt_go_gc_pause_seconds_total"))
	}
	// Flight-recorder health (present when journaling is on): how far
	// the journal lags behind the last fsync, and anomaly captures.
	if metrics.has("streamopt_journal_records_total") {
		fmt.Fprintf(&b, "journal    %.0f records / %s in segment %.0f   lag %.0f rec / %s behind fsync   captures %.0f\n",
			metrics.value("streamopt_journal_records_total"),
			fmtBytes(metrics.value("streamopt_journal_bytes_total")),
			metrics.value("streamopt_journal_segment"),
			metrics.value("streamopt_journal_unsynced_records"),
			fmtBytes(metrics.value("streamopt_journal_unsynced_bytes")),
			metrics.sum("streamopt_capture_total"))
	}
	// Sparse-subgraph build footprint (unsharded daemons publish the
	// unlabeled gauge; sharded daemons report per shard in the table,
	// so an exact-key check keeps this line off a sharded frame).
	if _, ok := metrics["streamopt_build_bytes"]; ok {
		fmt.Fprintf(&b, "build      %s resident (%s/commodity)\n",
			fmtBytes(metrics.value("streamopt_build_bytes")),
			fmtBytes(metrics.value("streamopt_build_bytes_per_commodity")))
	}
	// Per-shard solver view (present when the daemon runs -shards > 1).
	if metrics.has("streamopt_shard_commodities") {
		writeShardTable(&b, metrics, prevMetrics, prevAt)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "%-16s %10s %10s %6s %12s\n", "COMMODITY", "OFFERED", "ADMITTED", "PCT", "UTILITY")
	for _, c := range adm.Commodities {
		pct := 0.0
		if c.Offered > 0 {
			pct = 100 * c.Admitted / c.Offered
		}
		fmt.Fprintf(&b, "%-16s %10.3f %10.3f %5.1f%% %12.4f\n",
			c.Name, c.Offered, c.Admitted, pct, c.Utility)
	}

	if n := len(fl.Flips); n > 0 {
		fmt.Fprintf(&b, "\nrecent flips:\n")
		lo := n - cfg.flips
		if lo < 0 {
			lo = 0
		}
		for _, f := range fl.Flips[lo:] {
			state := "admitted"
			if !f.Admitted {
				state = "rejected"
			}
			trace := f.Trace
			if trace == "" {
				trace = "-"
			}
			fmt.Fprintf(&b, "  gen %-5d %-16s → %-8s rate %.3f/%.3f  trace %s\n",
				f.Generation, f.Commodity, state, f.Rate, f.Offered, trace)
		}
	}
	return b.String(), adm.Generation, metrics, nil
}

// writeShardTable renders the dual-decomposition view of a sharded
// daemon: the coordinator's exchange totals, then one row per solver
// shard with its advance rate since the previous frame, last-solve
// latency, gradient iterations, owned commodities, and how stale its
// latest price-exchange round is.
func writeShardTable(b *strings.Builder, metrics, prev metricSet, prevAt time.Time) {
	shards := metrics.labels("streamopt_shard_commodities", "shard")
	if len(shards) == 0 {
		return
	}
	fmt.Fprintf(b, "shards     %.0f shards   exchange rounds %.0f   price Δ %.2e\n",
		metrics.value("streamopt_shard_count"),
		metrics.value("streamopt_shard_exchange_rounds_total"),
		metrics.value("streamopt_shard_price_delta"))
	fmt.Fprintf(b, "%-6s %8s %10s %12s %10s %10s %12s\n",
		"SHARD", "COMMOD", "SOLVE/S", "LAST-SOLVE", "ITERS", "BUILD", "STALENESS")
	now := float64(time.Now().UnixNano()) / 1e9
	for _, id := range shards {
		key := func(family string) string { return family + `{shard="` + id + `"}` }
		rate := "-"
		if prev != nil && !prevAt.IsZero() {
			if dt := time.Since(prevAt).Seconds(); dt > 0 {
				d := metrics.value(key("streamopt_shard_solves_total")) - prev.value(key("streamopt_shard_solves_total"))
				rate = fmt.Sprintf("%.2f", d/dt)
			}
		}
		stale := "-"
		if ts := metrics.value(key("streamopt_shard_last_exchange_unix")); ts > 0 {
			stale = fmtAge(now - ts)
		}
		fmt.Fprintf(b, "%-6s %8.0f %10s %12s %10.0f %10s %12s\n",
			id,
			metrics.value(key("streamopt_shard_commodities")),
			rate,
			fmtDur(metrics.value(key("streamopt_shard_solve_seconds"))),
			metrics.value(key("streamopt_shard_iterations")),
			fmtBytes(metrics.value(key("streamopt_build_bytes"))),
			stale)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// metricSet is a parsed Prometheus text exposition: sample name with
// its label set (verbatim, as exposed) → value.
type metricSet map[string]float64

func (m metricSet) value(key string) float64 { return m[key] }

// has reports whether any sample of the family was exposed (bare or
// with labels).
func (m metricSet) has(family string) bool {
	if _, ok := m[family]; ok {
		return true
	}
	for k := range m {
		if strings.HasPrefix(k, family+"{") {
			return true
		}
	}
	return false
}

// labels collects the values one label takes across every sample of a
// family — e.g. the shard ids of streamopt_shard_commodities — sorted
// numerically when all values are integers, lexically otherwise.
func (m metricSet) labels(family, label string) []string {
	prefix := family + "{" + label + `="`
	var out []string
	for k := range m {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		rest := k[len(prefix):]
		if end := strings.IndexByte(rest, '"'); end >= 0 {
			out = append(out, rest[:end])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, aerr := strconv.Atoi(out[i])
		b, berr := strconv.Atoi(out[j])
		if aerr == nil && berr == nil {
			return a < b
		}
		return out[i] < out[j]
	})
	return out
}

// sum totals every sample of a labeled family — e.g. capture bundles
// across all trigger reasons.
func (m metricSet) sum(family string) float64 {
	total := m[family]
	for k, v := range m {
		if strings.HasPrefix(k, family+"{") {
			total += v
		}
	}
	return total
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le  float64
	cum float64
}

// histogram collects the le buckets of one family, sorted ascending
// (+Inf last).
func (m metricSet) histogram(family string) []bucket {
	var out []bucket
	prefix := family + `{le="`
	for k, v := range m {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			f, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = f
		}
		out = append(out, bucket{le: le, cum: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// getMetrics fetches and parses a Prometheus text page. The parser is
// deliberately minimal — name{labels} value — which is all the obs
// registry emits; malformed lines are skipped.
func getMetrics(client *http.Client, url string) (metricSet, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(data)), nil
}

func parseMetrics(text string) metricSet {
	m := make(metricSet)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		m[line[:sp]] = v
	}
	return m
}

// quantile estimates the q-quantile (0 < q < 1) from cumulative
// histogram buckets by linear interpolation within the covering
// bucket, the standard Prometheus histogram_quantile estimator. NaN
// when the histogram is empty.
func quantile(buckets []bucket, count float64, q float64) float64 {
	if count <= 0 || len(buckets) == 0 {
		return math.NaN()
	}
	target := q * count
	lowerLe, lowerCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= target {
			if math.IsInf(b.le, 1) {
				return lowerLe // all mass beyond the last finite bound
			}
			if b.cum == lowerCum {
				return b.le
			}
			return lowerLe + (b.le-lowerLe)*(target-lowerCum)/(b.cum-lowerCum)
		}
		lowerLe, lowerCum = b.le, b.cum
	}
	return lowerLe
}

// fmtDur renders a latency in seconds human-scaled (µs/ms/s).
func fmtDur(sec float64) string {
	switch {
	case math.IsNaN(sec):
		return "-"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// fmtAge renders an elapsed age in seconds human-scaled (ms/s/m/h) —
// for staleness figures that can grow far past the latency range
// fmtDur targets.
func fmtAge(sec float64) string {
	switch {
	case math.IsNaN(sec) || sec < 0:
		return "-"
	case sec < 1:
		return fmt.Sprintf("%.0fms", sec*1e3)
	case sec < 60:
		return fmt.Sprintf("%.1fs", sec)
	case sec < 3600:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// fmtBytes renders a byte count human-scaled (B/KiB/MiB/GiB).
func fmtBytes(n float64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%.0fB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", n/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", n/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", n/(1<<30))
	}
}
