package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseMetrics(t *testing.T) {
	text := `# HELP streamopt_utility total utility
# TYPE streamopt_utility gauge
streamopt_utility 42.5
streamopt_server_solves_total{start="warm"} 7
streamopt_decision_latency_seconds_bucket{le="0.01"} 3
streamopt_decision_latency_seconds_bucket{le="+Inf"} 5
streamopt_decision_latency_seconds_count 5

garbage line without value
`
	m := parseMetrics(text)
	if got := m.value("streamopt_utility"); got != 42.5 {
		t.Errorf("utility = %v, want 42.5", got)
	}
	if got := m.value(`streamopt_server_solves_total{start="warm"}`); got != 7 {
		t.Errorf("warm solves = %v, want 7", got)
	}
	buckets := m.histogram("streamopt_decision_latency_seconds_bucket")
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[0].le != 0.01 || buckets[0].cum != 3 {
		t.Errorf("bucket[0] = %+v", buckets[0])
	}
	if !math.IsInf(buckets[1].le, 1) {
		t.Errorf("bucket[1].le = %v, want +Inf", buckets[1].le)
	}
}

func TestQuantile(t *testing.T) {
	buckets := []bucket{{le: 0.01, cum: 50}, {le: 0.1, cum: 90}, {le: math.Inf(1), cum: 100}}
	// p50 target=50 lands exactly on the first bucket boundary.
	if got := quantile(buckets, 100, 0.50); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("p50 = %v, want 0.01", got)
	}
	// p75 target=75: interpolate between 0.01 and 0.1 → 0.01+0.09*25/40.
	want := 0.01 + 0.09*25/40
	if got := quantile(buckets, 100, 0.75); math.Abs(got-want) > 1e-12 {
		t.Errorf("p75 = %v, want %v", got, want)
	}
	// p99 target=99 falls in the +Inf bucket → clamp to last finite bound.
	if got := quantile(buckets, 100, 0.99); got != 0.1 {
		t.Errorf("p99 = %v, want 0.1", got)
	}
	if got := quantile(buckets, 0, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
}

func TestMetricLabels(t *testing.T) {
	m := parseMetrics(`
streamopt_shard_commodities{shard="0"} 2
streamopt_shard_commodities{shard="10"} 1
streamopt_shard_commodities{shard="2"} 3
streamopt_shard_solve_seconds{shard="0"} 0.5
streamopt_other 1
`)
	got := m.labels("streamopt_shard_commodities", "shard")
	want := []string{"0", "2", "10"} // numeric order, not lexical
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
	if ls := m.labels("streamopt_absent", "shard"); len(ls) != 0 {
		t.Fatalf("labels of absent family = %v, want none", ls)
	}
}

func TestFmtAge(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{math.NaN(), "-"},
		{-2, "-"},
		{0.25, "250ms"},
		{3.5, "3.5s"},
		{90, "1.5m"},
		{7200, "2.0h"},
	}
	for _, c := range cases {
		if got := fmtAge(c.sec); got != c.want {
			t.Errorf("fmtAge(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{math.NaN(), "-"},
		{50e-6, "50µs"},
		{0.0123, "12.3ms"},
		{2.5, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.sec); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

// TestRealMainAgainstFakeServer drives two refreshes against a stub of
// the admission API and checks the frame carries the key figures.
func TestRealMainAgainstFakeServer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/admitted", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"generation":3,"utility":12.5,"commodities":[
			{"name":"S1","offered":30,"admitted":30,"utility":10.0},
			{"name":"S2","offered":20,"admitted":0,"utility":0}]}`))
	})
	mux.HandleFunc("/v1/flips", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"flips":[{"generation":3,"commodity":"S2","admitted":false,
			"rate":0,"offered":20,"trace":"0af7651916cd43dd8448eb211c80319c"}]}`))
	})
	exchangeUnix := time.Now().Unix() - 3
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = fmt.Fprintf(w,
			"streamopt_shard_count 2\n"+
				"streamopt_shard_exchange_rounds_total 40\n"+
				"streamopt_shard_price_delta 1.25e-05\n"+
				"streamopt_shard_commodities{shard=\"0\"} 3\n"+
				"streamopt_shard_commodities{shard=\"1\"} 1\n"+
				"streamopt_shard_solves_total{shard=\"0\"} 12\n"+
				"streamopt_shard_solves_total{shard=\"1\"} 9\n"+
				"streamopt_shard_solve_seconds{shard=\"0\"} 0.0421\n"+
				"streamopt_shard_solve_seconds{shard=\"1\"} 0.0007\n"+
				"streamopt_shard_iterations{shard=\"0\"} 350\n"+
				"streamopt_shard_iterations{shard=\"1\"} 125\n"+
				"streamopt_build_bytes{shard=\"0\"} 1048576\n"+
				"streamopt_build_bytes{shard=\"1\"} 524288\n"+
				"streamopt_shard_last_exchange_unix{shard=\"0\"} %d\n"+
				"streamopt_shard_last_exchange_unix{shard=\"1\"} %d\n",
			exchangeUnix, exchangeUnix)
		_, _ = w.Write([]byte(
			"streamopt_server_solves_total{start=\"warm\"} 2\n" +
				"streamopt_server_solves_total{start=\"cold\"} 1\n" +
				"streamopt_decision_latency_seconds_bucket{le=\"0.05\"} 4\n" +
				"streamopt_decision_latency_seconds_bucket{le=\"+Inf\"} 4\n" +
				"streamopt_decision_latency_seconds_count 4\n" +
				"streamopt_spans_total 17\n" +
				"streamopt_go_goroutines 23\n" +
				"streamopt_go_heap_alloc_bytes 3145728\n" +
				"streamopt_go_gcs_total 5\n" +
				"streamopt_go_gc_pause_seconds_total 0.002\n" +
				"streamopt_journal_records_total 120\n" +
				"streamopt_journal_bytes_total 65536\n" +
				"streamopt_journal_segment 1\n" +
				"streamopt_journal_unsynced_records 3\n" +
				"streamopt_journal_unsynced_bytes 2048\n" +
				"streamopt_capture_total{reason=\"slo_breach\"} 2\n" +
				"streamopt_capture_total{reason=\"divergence\"} 1\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	cfg := cliConfig{
		addr:     strings.TrimPrefix(ts.URL, "http://"),
		interval: time.Millisecond,
		count:    2,
		plain:    true,
		flips:    8,
		out:      &out,
	}
	if err := realMain(cfg); err != nil {
		t.Fatalf("realMain: %v", err)
	}
	frame := out.String()
	for _, want := range []string{
		"generation 3",
		"utility 12.5",
		"solves 3 (warm 2 / cold 1)",
		"decisions 4",
		"spans 17",
		"S1",
		"rejected",
		"0af7651916cd43dd8448eb211c80319c",
		"gen/s", // second frame derives a generation rate
		"goroutines 23",
		"heap 3.0MiB",
		"gc 5 (2.0ms paused)",
		"120 records / 64.0KiB in segment 1",
		"lag 3 rec / 2.0KiB behind fsync",
		"captures 3", // summed across reasons
		"2 shards   exchange rounds 40   price Δ 1.25e-05",
		"SHARD",
		"BUILD",
		"1.0MiB", // shard 0 subset build footprint
		"STALENESS",
		"42.1ms", // shard 0 last-solve latency
		"0.00",   // static solves_total → zero advance rate on frame 2
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestRealMainErrors verifies a dead server surfaces as an error, not
// a hang or a panic.
func TestRealMainErrors(t *testing.T) {
	var out strings.Builder
	err := realMain(cliConfig{
		addr: "127.0.0.1:1", interval: time.Millisecond, count: 1, plain: true, out: &out,
	})
	if err == nil {
		t.Fatal("expected connection error")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[float64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3145728: "3.0MiB",
		2 << 30: "2.00GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%v) = %q, want %q", in, got, want)
		}
	}
}
