// Command streamopt solves a stream-processing resource-management
// problem instance (JSON, see internal/stream's schema or cmd/netgen)
// with the paper's gradient algorithm, the back-pressure baseline, or
// the LP reference optimum, and prints admission rates, utility, and
// resource allocations.
//
//	go run ./cmd/netgen -seed 42 > instance.json
//	go run ./cmd/streamopt -in instance.json -alg gradient -ref
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gradient"
	"repro/internal/qsim"
	"repro/internal/stream"
	"repro/internal/transform"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON (required)")
		alg      = flag.String("alg", "gradient", "algorithm: gradient | gradient-adaptive | gradient-dist | backpressure | reference")
		iters    = flag.Int("iters", 0, "iteration budget (0 = algorithm default)")
		eta      = flag.Float64("eta", 0.04, "gradient step scale η")
		eps      = flag.Float64("eps", 0.2, "penalty coefficient ε")
		ref      = flag.Bool("ref", false, "also compute the LP reference optimum")
		topN     = flag.Int("top", 10, "show the N most utilized resources")
		trace    = flag.Bool("trace", false, "print the convergence trace")
		sample   = flag.Int("sample", 0, "trace sampling stride (0 = default)")
		validate = flag.Bool("validate", false, "replay the solution in the queue simulator (gradient algorithms only)")
	)
	flag.Parse()
	if err := realMain(*in, *alg, *iters, *eta, *eps, *ref, *topN, *trace, *sample, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "streamopt:", err)
		os.Exit(1)
	}
}

func realMain(in, alg string, iters int, eta, eps float64, ref bool, topN int, trace bool, sample int, validate bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	p, err := stream.ParseProblem(data)
	if err != nil {
		return err
	}
	res, err := core.Solve(p, core.Options{
		Algorithm:     core.Algorithm(alg),
		MaxIters:      iters,
		Eta:           eta,
		Epsilon:       eps,
		WithReference: ref,
		SampleEvery:   sample,
	})
	if err != nil {
		return err
	}
	if validate {
		if err := replayInQsim(p, alg, iters, eta, eps); err != nil {
			return err
		}
	}

	fmt.Printf("algorithm:  %s\n", res.Algorithm)
	fmt.Printf("iterations: %d\n", res.Iterations)
	fmt.Printf("utility:    %.4f\n", res.Utility)
	if ref && res.ReferenceUtility == res.ReferenceUtility {
		fmt.Printf("optimal:    %.4f  (achieved %.1f%%)\n",
			res.ReferenceUtility, 100*res.Utility/res.ReferenceUtility)
	}
	if res.Messages > 0 {
		fmt.Printf("protocol:   %d messages, %d rounds\n", res.Messages, res.Rounds)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\ncommodity\tadmitted rate")
	for j, name := range res.Commodities {
		fmt.Fprintf(w, "%s\t%.4f\n", name, res.Admitted[j])
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if len(res.Usage) > 0 && topN > 0 {
		sort.Slice(res.Usage, func(a, b int) bool {
			return res.Usage[a].Utilization > res.Usage[b].Utilization
		})
		if topN > len(res.Usage) {
			topN = len(res.Usage)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nresource\tkind\tcapacity\tusage\tutilization")
		for _, u := range res.Usage[:topN] {
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.1f%%\n",
				u.Name, u.Kind, u.Capacity, u.Usage, 100*u.Utilization)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if len(res.Prices) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nbottleneck\tkind\tshadow price (utility per capacity unit)")
		limit := topN
		if limit <= 0 || limit > len(res.Prices) {
			limit = len(res.Prices)
		}
		for _, pr := range res.Prices[:limit] {
			fmt.Fprintf(w, "%s\t%s\t%.4f\n", pr.Name, pr.Kind, pr.Price)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if trace {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\niter\tutility\tcost")
		for _, tp := range res.Trace {
			fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", tp.Iteration, tp.Utility, tp.Cost)
		}
		return w.Flush()
	}
	return nil
}

// replayInQsim re-solves with the gradient engine (the queue simulator
// needs the routing variables, which core.Solve does not expose) and
// replays the plan under Poisson arrivals.
func replayInQsim(p *stream.Problem, alg string, iters int, eta, eps float64) error {
	if alg != string(core.Gradient) && alg != string(core.GradientAdaptive) {
		return fmt.Errorf("-validate supports the gradient algorithms, not %q", alg)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: eps})
	if err != nil {
		return err
	}
	if iters <= 0 {
		iters = 5000
	}
	eng := gradient.New(x, gradient.Config{Eta: eta})
	if _, err := eng.Run(iters, nil); err != nil {
		return err
	}
	res, err := qsim.Run(eng.Routing(), qsim.Config{Ticks: 6000, Arrivals: qsim.Poisson, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Println("\nqueue-simulator replay (Poisson arrivals, 6000 ticks):")
	for j := range x.Commodities {
		fmt.Printf("  %s: delivered %.3f/tick, dropped %.3f/tick\n",
			x.Commodities[j].Name, res.Delivered[j], res.Dropped[j])
	}
	fmt.Printf("  queues: avg %.1f, peak %.1f; mean sojourn %.1f ticks\n",
		res.AvgQueue, res.PeakQueue, res.AvgDelayTicks)
	return nil
}
