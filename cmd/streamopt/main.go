// Command streamopt solves a stream-processing resource-management
// problem instance (JSON, see internal/stream's schema or cmd/netgen)
// with the paper's gradient algorithm, the back-pressure baseline, or
// the LP reference optimum, and prints admission rates, utility, and
// resource allocations.
//
//	go run ./cmd/netgen -seed 42 > instance.json
//	go run ./cmd/streamopt -in instance.json -alg gradient -ref
//
// With -metrics-addr the solve is observable live: /metrics serves
// Prometheus text, /debug/vars serves expvar JSON, and /debug/pprof
// serves runtime profiles while the iteration runs. -events-out writes
// one JSON event per iteration (see internal/obs for the schema), and
// -trace-out writes the convergence trace as JSONL instead of
// interleaving it with the report on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gradient"
	"repro/internal/obs"
	"repro/internal/qsim"
	"repro/internal/stream"
	"repro/internal/transform"
)

// cliConfig carries every flag so tests can drive realMain directly.
type cliConfig struct {
	in       string
	alg      string
	iters    int
	eta      float64
	eps      float64
	workers  int
	ref      bool
	topN     int
	trace    bool
	sample   int
	validate bool
	explain  bool

	metricsAddr string
	eventsOut   string
	traceOut    string
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.in, "in", "", "problem JSON (required)")
	flag.StringVar(&cfg.alg, "alg", "gradient", "algorithm: gradient | gradient-adaptive | gradient-dist | backpressure | reference")
	flag.IntVar(&cfg.iters, "iters", 0, "iteration budget (0 = algorithm default)")
	flag.Float64Var(&cfg.eta, "eta", 0.04, "gradient step scale η")
	flag.Float64Var(&cfg.eps, "eps", 0.2, "penalty coefficient ε")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound for the per-commodity gradient waves (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.ref, "ref", false, "also compute the LP reference optimum")
	flag.IntVar(&cfg.topN, "top", 10, "show the N most utilized resources")
	flag.BoolVar(&cfg.trace, "trace", false, "print the convergence trace")
	flag.IntVar(&cfg.sample, "sample", 0, "trace sampling stride (0 = default)")
	flag.BoolVar(&cfg.validate, "validate", false, "replay the solution in the queue simulator (gradient algorithms only)")
	flag.BoolVar(&cfg.explain, "explain", false, "print per-commodity bottleneck attribution (gradient algorithms only)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while solving (e.g. :9090)")
	flag.StringVar(&cfg.eventsOut, "events-out", "", "write per-iteration JSONL events to this file")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write the convergence trace as JSONL to this file")
	flag.Parse()
	if err := realMain(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "streamopt:", err)
		os.Exit(1)
	}
}

func realMain(cfg cliConfig) error {
	if cfg.in == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	p, err := stream.ParseProblem(data)
	if err != nil {
		return err
	}

	// Observability: a recorder exists only when asked for, so the
	// default path keeps the engines' zero-overhead nil recorder.
	var rec *obs.Recorder
	if cfg.metricsAddr != "" || cfg.eventsOut != "" {
		var sink obs.Sink
		if cfg.eventsOut != "" {
			fs, err := obs.NewFileSink(cfg.eventsOut)
			if err != nil {
				return err
			}
			sink = fs
		}
		rec = obs.NewRecorder(obs.NewRegistry(), sink)
		defer rec.Close()
		if cfg.metricsAddr != "" {
			srv, err := obs.Serve(cfg.metricsAddr, rec.Registry())
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "streamopt: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
		}
	}

	res, err := core.Solve(p, core.Options{
		Algorithm:     core.Algorithm(cfg.alg),
		MaxIters:      cfg.iters,
		Eta:           cfg.eta,
		Epsilon:       cfg.eps,
		Workers:       cfg.workers,
		WithReference: cfg.ref,
		SampleEvery:   cfg.sample,
		Recorder:      rec,
		Explain:       cfg.explain,
	})
	if err != nil {
		return err
	}
	if cfg.validate {
		if err := replayInQsim(p, cfg, rec); err != nil {
			return err
		}
	}

	fmt.Printf("algorithm:  %s\n", res.Algorithm)
	fmt.Printf("iterations: %d\n", res.Iterations)
	fmt.Printf("utility:    %.4f\n", res.Utility)
	if cfg.ref && res.ReferenceUtility == res.ReferenceUtility {
		fmt.Printf("optimal:    %.4f  (achieved %.1f%%)\n",
			res.ReferenceUtility, 100*res.Utility/res.ReferenceUtility)
	}
	if res.Messages > 0 {
		fmt.Printf("protocol:   %d messages, %d rounds\n", res.Messages, res.Rounds)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\ncommodity\tadmitted rate")
	for j, name := range res.Commodities {
		fmt.Fprintf(w, "%s\t%.4f\n", name, res.Admitted[j])
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if cfg.explain {
		if len(res.Explain) == 0 {
			fmt.Printf("\n(-explain: algorithm %s exposes no attribution)\n", res.Algorithm)
		} else {
			printExplain(res.Explain)
		}
	}

	if len(res.Usage) > 0 && cfg.topN > 0 {
		topN := cfg.topN
		sort.Slice(res.Usage, func(a, b int) bool {
			return res.Usage[a].Utilization > res.Usage[b].Utilization
		})
		if topN > len(res.Usage) {
			topN = len(res.Usage)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nresource\tkind\tcapacity\tusage\tutilization")
		for _, u := range res.Usage[:topN] {
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.1f%%\n",
				u.Name, u.Kind, u.Capacity, u.Usage, 100*u.Utilization)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if len(res.Prices) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nbottleneck\tkind\tshadow price (utility per capacity unit)")
		limit := cfg.topN
		if limit <= 0 || limit > len(res.Prices) {
			limit = len(res.Prices)
		}
		for _, pr := range res.Prices[:limit] {
			fmt.Fprintf(w, "%s\t%s\t%.4f\n", pr.Name, pr.Kind, pr.Price)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if cfg.traceOut != "" {
		if err := writeTrace(cfg.traceOut, res.Trace); err != nil {
			return err
		}
	}
	if cfg.trace {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\niter\tutility\tcost")
		for _, tp := range res.Trace {
			fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", tp.Iteration, tp.Utility, tp.Cost)
		}
		return w.Flush()
	}
	return nil
}

// printExplain renders the bottleneck attribution: per commodity its
// admission marginals and each binding resource with its shadow price.
func printExplain(explain []core.CommodityExplain) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\ncommodity\tadmitted/offered\tU'(a)\tpath cost\tgap\tbottleneck")
	for _, ce := range explain {
		bottleneck := "(none: admission limited by offered rate)"
		if len(ce.Binding) > 0 {
			b := ce.Binding[0]
			bottleneck = fmt.Sprintf("%s %s (price %.4f, util %.1f%%)",
				b.Kind, b.Name, b.Price, 100*b.Utilization)
		}
		fmt.Fprintf(w, "%s\t%.4f/%.4f\t%.4f\t%.4f\t%.4f\t%s\n",
			ce.Name, ce.Admitted, ce.Offered, ce.MarginalUtility, ce.PathCost, ce.Gap, bottleneck)
		for _, b := range ce.Binding[1:] {
			fmt.Fprintf(w, "\t\t\t\t\talso %s %s (price %.4f, util %.1f%%)\n",
				b.Kind, b.Name, b.Price, 100*b.Utilization)
		}
	}
	_ = w.Flush()
}

// tracePoint is the JSONL schema of one -trace-out line.
type tracePoint struct {
	Iteration int     `json:"iter"`
	Utility   float64 `json:"utility"`
	Cost      float64 `json:"cost"`
}

// writeTrace dumps the convergence trace as one JSON object per line.
func writeTrace(path string, trace []core.TracePoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, tp := range trace {
		if err := enc.Encode(tracePoint{tp.Iteration, tp.Utility, tp.Cost}); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// replayInQsim re-solves with the gradient engine (the queue simulator
// needs the routing variables, which core.Solve does not expose) and
// replays the plan under Poisson arrivals.
func replayInQsim(p *stream.Problem, cfg cliConfig, rec *obs.Recorder) error {
	if cfg.alg != string(core.Gradient) && cfg.alg != string(core.GradientAdaptive) {
		return fmt.Errorf("-validate supports the gradient algorithms, not %q", cfg.alg)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: cfg.eps})
	if err != nil {
		return err
	}
	iters := cfg.iters
	if iters <= 0 {
		iters = 5000
	}
	eng := gradient.New(x, gradient.Config{Eta: cfg.eta})
	if _, err := eng.Run(iters, nil); err != nil {
		return err
	}
	res, err := qsim.Run(eng.Routing(), qsim.Config{
		Ticks: 6000, Arrivals: qsim.Poisson, Seed: 1, Recorder: rec,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nqueue-simulator replay (Poisson arrivals, 6000 ticks):")
	for j := range x.Commodities {
		fmt.Printf("  %s: delivered %.3f/tick, dropped %.3f/tick\n",
			x.Commodities[j].Name, res.Delivered[j], res.Dropped[j])
	}
	fmt.Printf("  queues: avg %.1f, peak %.1f; mean sojourn %.1f ticks\n",
		res.AvgQueue, res.PeakQueue, res.AvgDelayTicks)
	return nil
}
