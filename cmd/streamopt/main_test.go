package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/randnet"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 12, Commodities: 2, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRealMainGradient(t *testing.T) {
	path := writeInstance(t)
	if err := realMain(path, "gradient", 200, 0.04, 0.2, true, 3, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainReference(t *testing.T) {
	path := writeInstance(t)
	if err := realMain(path, "reference", 0, 0.04, 0.2, false, 0, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainBackPressure(t *testing.T) {
	path := writeInstance(t)
	if err := realMain(path, "backpressure", 500, 0.04, 0.2, false, 0, true, 100, false); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainErrors(t *testing.T) {
	if err := realMain("", "gradient", 0, 0.04, 0.2, false, 0, false, 0, false); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := realMain("/nonexistent.json", "gradient", 0, 0.04, 0.2, false, 0, false, 0, false); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeInstance(t)
	if err := realMain(path, "quantum", 10, 0.04, 0.2, false, 0, false, 0, false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRealMainValidate(t *testing.T) {
	path := writeInstance(t)
	if err := realMain(path, "gradient", 500, 0.04, 0.2, false, 0, false, 0, true); err != nil {
		t.Fatal(err)
	}
	// -validate is gradient-only.
	if err := realMain(path, "backpressure", 100, 0.04, 0.2, false, 0, false, 0, true); err == nil {
		t.Fatal("-validate accepted for backpressure")
	}
}
