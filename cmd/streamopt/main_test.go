package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/randnet"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 12, Commodities: 2, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// base returns the flag defaults used by most tests.
func base(in, alg string, iters int) cliConfig {
	return cliConfig{in: in, alg: alg, iters: iters, eta: 0.04, eps: 0.2}
}

func TestRealMainGradient(t *testing.T) {
	cfg := base(writeInstance(t), "gradient", 200)
	cfg.ref = true
	cfg.topN = 3
	if err := realMain(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainReference(t *testing.T) {
	if err := realMain(base(writeInstance(t), "reference", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainBackPressure(t *testing.T) {
	cfg := base(writeInstance(t), "backpressure", 500)
	cfg.trace = true
	cfg.sample = 100
	if err := realMain(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainErrors(t *testing.T) {
	if err := realMain(base("", "gradient", 0)); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := realMain(base("/nonexistent.json", "gradient", 0)); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := realMain(base(writeInstance(t), "quantum", 10)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRealMainValidate(t *testing.T) {
	path := writeInstance(t)
	cfg := base(path, "gradient", 500)
	cfg.validate = true
	if err := realMain(cfg); err != nil {
		t.Fatal(err)
	}
	// -validate is gradient-only.
	cfg = base(path, "backpressure", 100)
	cfg.validate = true
	if err := realMain(cfg); err == nil {
		t.Fatal("-validate accepted for backpressure")
	}
}

// TestRealMainObservability is the acceptance path: events-out gets one
// valid JSON iteration event per iteration, trace-out gets valid JSONL,
// and /metrics is scrapeable.
func TestRealMainObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := base(writeInstance(t), "gradient", 150)
	cfg.eventsOut = filepath.Join(dir, "events.jsonl")
	cfg.traceOut = filepath.Join(dir, "trace.jsonl")
	cfg.metricsAddr = "127.0.0.1:0"
	if err := realMain(cfg); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(cfg.eventsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	iters := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid event line %q: %v", sc.Text(), err)
		}
		if e.Type == obs.EventIteration {
			iters++
		}
	}
	if iters != 150 {
		t.Fatalf("got %d iteration events, want 150", iters)
	}

	tf, err := os.Open(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	lines := 0
	sc = bufio.NewScanner(tf)
	for sc.Scan() {
		var tp tracePoint
		if err := json.Unmarshal(sc.Bytes(), &tp); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("trace-out is empty")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		_, _ = bufio.NewReader(r).WriteTo(&sb)
		done <- sb.String()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("realMain: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestRealMainExplain: -explain prints the attribution table with the
// admission marginals and a named bottleneck column.
func TestRealMainExplain(t *testing.T) {
	cfg := base(writeInstance(t), "gradient", 1500)
	cfg.explain = true
	out := captureStdout(t, func() error { return realMain(cfg) })
	for _, want := range []string{"bottleneck", "U'(a)", "path cost", "gap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-explain output missing %q:\n%s", want, out)
		}
	}

	// Non-gradient algorithms have no flow evaluation to attribute.
	cfg = base(writeInstance(t), "reference", 0)
	cfg.explain = true
	out = captureStdout(t, func() error { return realMain(cfg) })
	if !strings.Contains(out, "no attribution") {
		t.Fatalf("-explain on reference should say no attribution:\n%s", out)
	}
}

// TestMetricsScrapeDuringSolve checks a live scrape against a server the
// same way realMain wires it.
func TestMetricsScrapeDuringSolve(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	srv, err := obs.Serve("127.0.0.1:0", rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec.Iteration("gradient", 1, 3.5, 1.0, []float64{1, 2}, true)
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "streamopt_iterations_total 1") {
		t.Fatalf("metrics scrape missing iteration counter:\n%s", sb.String())
	}
}
