// Command benchdiff compares a `go test -bench` run against a
// checked-in baseline and exits nonzero when a benchmark regressed
// beyond tolerance — the repo's benchmark-regression gate.
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchdiff
//	go test -run='^$' -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchdiff -update
//
// The baseline (BENCH_baseline.json) stores ns/op and allocs/op per
// benchmark. ns/op at -benchtime=1x is noisy, so its default tolerance
// is generous (a 4× slowdown fails, anything less passes); allocs/op is
// near-deterministic and gets a tight default. New benchmarks are
// reported but never fail; benchmarks that vanished from the run warn.
// -warn-only downgrades regressions to warnings (exit 0) for PR builds,
// while nightly runs keep the hard gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Bench is one benchmark's stored (or measured) result. AllocsPerOp is
// -1 when the run did not report allocations (no -benchmem and no
// b.ReportAllocs).
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the schema of BENCH_baseline.json.
type Baseline struct {
	// Benchtime documents how the stored numbers were produced; the
	// comparison is only meaningful against runs using the same value.
	Benchtime  string           `json:"benchtime"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

type cliConfig struct {
	baseline  string
	in        string
	tolerance float64
	allocTol  float64
	update    bool
	warnOnly  bool

	stdin  io.Reader
	stdout io.Writer
	stderr io.Writer
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.baseline, "baseline", "BENCH_baseline.json", "baseline file to compare against (and rewrite with -update)")
	flag.StringVar(&cfg.in, "in", "-", "benchmark output to read (- = stdin)")
	flag.Float64Var(&cfg.tolerance, "tolerance", 3.0, "allowed fractional ns/op increase (3.0 = up to 4x the baseline passes)")
	flag.Float64Var(&cfg.allocTol, "alloc-tolerance", 0.25, "allowed fractional allocs/op increase")
	flag.BoolVar(&cfg.update, "update", false, "rewrite the baseline from this run instead of comparing")
	flag.BoolVar(&cfg.warnOnly, "warn-only", false, "report regressions but exit 0 (PR builds)")
	flag.Parse()
	cfg.stdin, cfg.stdout, cfg.stderr = os.Stdin, os.Stdout, os.Stderr
	code, err := realMain(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// benchLine matches `go test -bench` result lines:
//
//	BenchmarkName-8   123   45678 ns/op   90 B/op   12 allocs/op
//
// The GOMAXPROCS suffix, B/op and allocs/op are optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) (map[string]Bench, error) {
	out := map[string]Bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		b := Bench{NsPerOp: ns, AllocsPerOp: -1}
		if m[4] != "" {
			if b.AllocsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out[m[1]] = b
	}
	return out, sc.Err()
}

func realMain(cfg cliConfig) (int, error) {
	in := cfg.stdin
	if cfg.in != "-" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	run, err := parseBench(in)
	if err != nil {
		return 0, err
	}
	if len(run) == 0 {
		return 0, fmt.Errorf("no benchmark lines in input")
	}

	if cfg.update {
		base := Baseline{Benchtime: "1x", Benchmarks: run}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(cfg.baseline, append(data, '\n'), 0o644); err != nil {
			return 0, err
		}
		fmt.Fprintf(cfg.stdout, "benchdiff: wrote %d benchmarks to %s\n", len(run), cfg.baseline)
		return 0, nil
	}

	data, err := os.ReadFile(cfg.baseline)
	if err != nil {
		return 0, fmt.Errorf("no baseline (run with -update to create one): %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("parse %s: %w", cfg.baseline, err)
	}

	names := make([]string, 0, len(run))
	for name := range run {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	w := cfg.stdout
	fmt.Fprintf(w, "%-34s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "status")
	for _, name := range names {
		cur := run[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s  new (not in baseline)\n", name, "-", cur.NsPerOp, "-")
			continue
		}
		ratio := cur.NsPerOp / ref.NsPerOp
		status := "ok"
		if cur.NsPerOp > ref.NsPerOp*(1+cfg.tolerance) {
			status = fmt.Sprintf("REGRESSION: ns/op %.1fx > allowed %.1fx", ratio, 1+cfg.tolerance)
			regressions++
		}
		if cur.AllocsPerOp >= 0 && ref.AllocsPerOp >= 0 &&
			cur.AllocsPerOp > ref.AllocsPerOp*(1+cfg.allocTol) {
			status = fmt.Sprintf("REGRESSION: allocs/op %.0f > allowed %.0f",
				cur.AllocsPerOp, ref.AllocsPerOp*(1+cfg.allocTol))
			regressions++
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %8.2f  %s\n", name, ref.NsPerOp, cur.NsPerOp, ratio, status)
	}
	for name := range base.Benchmarks {
		if _, ok := run[name]; !ok {
			fmt.Fprintf(cfg.stderr, "benchdiff: warning: %s in baseline but missing from run\n", name)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(cfg.stderr, "benchdiff: %d regression(s) beyond tolerance\n", regressions)
		if cfg.warnOnly {
			fmt.Fprintln(cfg.stderr, "benchdiff: -warn-only set; not failing the build")
			return 0, nil
		}
		return 1, nil
	}
	fmt.Fprintf(w, "benchdiff: %d benchmarks within tolerance\n", len(run))
	return 0, nil
}
