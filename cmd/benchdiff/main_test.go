package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFlowEvaluate-8            	     100	     12345 ns/op	    2048 B/op	      30 allocs/op
BenchmarkMarginalCostWave-8        	      50	     23456.5 ns/op
BenchmarkTransformBuild            	      10	    111222 ns/op	   99999 B/op	     500 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	fe := got["BenchmarkFlowEvaluate"]
	if fe.NsPerOp != 12345 || fe.AllocsPerOp != 30 {
		t.Fatalf("FlowEvaluate = %+v", fe)
	}
	// No -benchmem columns: allocs unknown, marked -1.
	if mw := got["BenchmarkMarginalCostWave"]; mw.NsPerOp != 23456.5 || mw.AllocsPerOp != -1 {
		t.Fatalf("MarginalCostWave = %+v", mw)
	}
	// No GOMAXPROCS suffix.
	if tb := got["BenchmarkTransformBuild"]; tb.NsPerOp != 111222 {
		t.Fatalf("TransformBuild = %+v", tb)
	}
}

// run invokes realMain with the given stdin content and returns the
// exit code plus captured stdout+stderr.
func run(t *testing.T, cfg cliConfig, stdin string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	cfg.stdin = strings.NewReader(stdin)
	cfg.stdout, cfg.stderr = &out, &out
	if cfg.in == "" {
		cfg.in = "-"
	}
	code, err := realMain(cfg)
	if err != nil {
		t.Fatalf("realMain: %v\n%s", err, out.String())
	}
	return code, out.String()
}

func TestUpdateThenCompareClean(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	code, out := run(t, cliConfig{baseline: baseline, update: true, tolerance: 3, allocTol: 0.25}, sampleRun)
	if code != 0 {
		t.Fatalf("update exit %d: %s", code, out)
	}
	// Identical run: everything within tolerance, exit 0.
	code, out = run(t, cliConfig{baseline: baseline, tolerance: 3, allocTol: 0.25}, sampleRun)
	if code != 0 {
		t.Fatalf("clean compare exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func TestNsRegressionFails(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	run(t, cliConfig{baseline: baseline, update: true}, sampleRun)

	slow := strings.Replace(sampleRun, "12345 ns/op", "99999999 ns/op", 1)
	code, out := run(t, cliConfig{baseline: baseline, tolerance: 3, allocTol: 0.25}, slow)
	if code != 1 {
		t.Fatalf("regression exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION: ns/op") {
		t.Fatalf("regression not reported:\n%s", out)
	}

	// Same regression under -warn-only: reported but exit 0.
	code, out = run(t, cliConfig{baseline: baseline, tolerance: 3, allocTol: 0.25, warnOnly: true}, slow)
	if code != 0 {
		t.Fatalf("-warn-only exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "not failing the build") {
		t.Fatalf("warn-only note missing:\n%s", out)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	run(t, cliConfig{baseline: baseline, update: true}, sampleRun)

	leaky := strings.Replace(sampleRun, "30 allocs/op", "300 allocs/op", 1)
	code, out := run(t, cliConfig{baseline: baseline, tolerance: 3, allocTol: 0.25}, leaky)
	if code != 1 {
		t.Fatalf("alloc regression exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION: allocs/op") {
		t.Fatalf("alloc regression not reported:\n%s", out)
	}
}

func TestNewAndMissingBenchmarks(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	run(t, cliConfig{baseline: baseline, update: true}, sampleRun)

	// Rename one benchmark: the new name is informational, the old one
	// warns, and neither fails the build.
	renamed := strings.Replace(sampleRun, "BenchmarkFlowEvaluate-8", "BenchmarkFlowEvaluateV2-8", 1)
	code, out := run(t, cliConfig{baseline: baseline, tolerance: 3, allocTol: 0.25}, renamed)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "new (not in baseline)") {
		t.Fatalf("new benchmark not flagged:\n%s", out)
	}
	if !strings.Contains(out, "missing from run") {
		t.Fatalf("vanished benchmark not warned:\n%s", out)
	}
}

func TestBaselineFileIsValid(t *testing.T) {
	// The checked-in baseline must parse and cover the repo's benchmarks.
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("checked-in baseline missing: %v", err)
	}
	var dec struct {
		Benchmarks map[string]Bench `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.Benchmarks) < 20 {
		t.Fatalf("baseline has only %d benchmarks", len(dec.Benchmarks))
	}
	for name, b := range dec.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Fatalf("%s has non-positive ns/op %g", name, b.NsPerOp)
		}
	}
}
