package main

import (
	"bytes"
	"testing"

	"repro/internal/stream"
)

func TestRealMainEmitsValidInstance(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(&buf, 7, 16, 2, 4, false); err != nil {
		t.Fatal(err)
	}
	p, err := stream.ParseProblem(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(p.Commodities) != 2 {
		t.Fatalf("commodities = %d, want 2", len(p.Commodities))
	}
}

func TestRealMainDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := realMain(&a, 3, 12, 2, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := realMain(&b, 3, 12, 2, 3, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same flags, different output")
	}
}

func TestRealMainRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(&buf, 1, 4, 9, 2, false); err == nil {
		t.Fatal("too many commodities accepted")
	}
}

// TestRealMainSparse: -sparse lifts the commodities ≤ nodes/layers
// constraint — a commodity count far beyond the core size parses back
// as a valid instance.
func TestRealMainSparse(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(&buf, 7, 20, 100, 4, true); err != nil {
		t.Fatal(err)
	}
	p, err := stream.ParseProblem(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(p.Commodities) != 100 {
		t.Fatalf("commodities = %d, want 100", len(p.Commodities))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
