// Command netgen emits a random problem instance in the §6 style as
// JSON on stdout (consumed by cmd/streamopt). Defaults reproduce the
// paper's headline configuration: 40 nodes, 3 commodities, capacities
// U[1,100], potentials U[1,10], consumption U[1,5].
//
//	go run ./cmd/netgen -seed 42 > instance.json
//
// With -sparse the generator switches to the chain-over-shared-core
// family (randnet.GenerateSparse): commodity count is no longer bound
// by the node count, and each commodity's member subgraph stays
// O(layers). This is the regime for scale tests:
//
//	go run ./cmd/netgen -sparse -nodes 48 -layers 6 -commodities 10000 > scale.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/randnet"
	"repro/internal/stream"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "generator seed")
		nodes       = flag.Int("nodes", 40, "processing nodes")
		commodities = flag.Int("commodities", 3, "commodities (source/sink pairs)")
		layers      = flag.Int("layers", 5, "DAG layers (graph depth)")
		sparse      = flag.Bool("sparse", false, "chain-per-commodity family over a shared core (many-commodity scale)")
	)
	flag.Parse()
	if err := realMain(os.Stdout, *seed, *nodes, *commodities, *layers, *sparse); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func realMain(out io.Writer, seed int64, nodes, commodities, layers int, sparse bool) error {
	cfg := randnet.Config{
		Seed:        seed,
		Nodes:       nodes,
		Commodities: commodities,
		Layers:      layers,
	}
	var (
		p   *stream.Problem
		err error
	)
	if sparse {
		p, err = randnet.GenerateSparse(cfg)
	} else {
		p, err = randnet.Generate(cfg)
	}
	if err != nil {
		return err
	}
	data, err := p.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = out.Write(append(data, '\n'))
	return err
}
