// Command netgen emits a random problem instance in the §6 style as
// JSON on stdout (consumed by cmd/streamopt). Defaults reproduce the
// paper's headline configuration: 40 nodes, 3 commodities, capacities
// U[1,100], potentials U[1,10], consumption U[1,5].
//
//	go run ./cmd/netgen -seed 42 > instance.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/randnet"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "generator seed")
		nodes       = flag.Int("nodes", 40, "processing nodes")
		commodities = flag.Int("commodities", 3, "commodities (source/sink pairs)")
		layers      = flag.Int("layers", 5, "DAG layers (graph depth)")
	)
	flag.Parse()
	if err := realMain(os.Stdout, *seed, *nodes, *commodities, *layers); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func realMain(out io.Writer, seed int64, nodes, commodities, layers int) error {
	p, err := randnet.Generate(randnet.Config{
		Seed:        seed,
		Nodes:       nodes,
		Commodities: commodities,
		Layers:      layers,
	})
	if err != nil {
		return err
	}
	data, err := p.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = out.Write(append(data, '\n'))
	return err
}
