// Command admissiond is the streaming admission server: it loads (or
// generates) a stream-processing problem instance, keeps the joint
// admission-control + routing solution converged as commodities
// arrive, change their offered rates, and depart, and serves the JSON
// API of internal/server plus live /metrics, /debug/vars and
// /debug/pprof on one listener.
//
//	go run ./cmd/netgen -seed 42 > instance.json
//	go run ./cmd/admissiond -in instance.json -addr :8080
//
//	# live rate update; the server re-solves warm-started
//	curl -X PATCH localhost:8080/v1/commodities/S1 -d '{"maxRate": 30}'
//	curl localhost:8080/v1/admitted
//
//	# solver introspection
//	curl localhost:8080/explain?commodity=S1   # bottleneck attribution
//	curl localhost:8080/history                # generation-over-generation diffs
//	curl localhost:8080/debug/trace            # sampled per-iteration solver state
//
// Without -in, a random instance is generated (-gen-seed, -gen-nodes,
// -gen-commodities), which is handy for demos and smoke tests.
// SIGINT/SIGTERM shut down gracefully, draining an in-flight solve.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/trace"
	"repro/internal/randnet"
	"repro/internal/server"
	"repro/internal/stream"
)

// cliConfig carries every flag so tests can drive realMain directly.
type cliConfig struct {
	in       string
	addr     string
	genSeed  int64
	genNodes int
	genComms int

	eta           float64
	eps           float64
	iters         int
	workers       int
	stationaryTol float64
	debounce      time.Duration

	shards            int
	placementSalt     uint64
	priceExchangeEvry int
	priceDamping      float64

	eventsOut      string
	eventsMaxBytes int64
	traceCap       int
	traceStride    int
	spanCap        int
	historyCap     int

	journalDir      string
	checkpointEvery int
	segmentBytes    int64
	fsync           string
	sloMS           float64
	captureDir      string
	runtimeSample   time.Duration

	// flagSet names the flags the operator passed explicitly; journal
	// recovery only adopts recorded shard topology for flags absent
	// from it.
	flagSet map[string]bool

	// ready, when non-nil, receives the bound address once the API is
	// serving; stop, when non-nil, replaces signal-based shutdown.
	ready func(addr string)
	stop  chan struct{}
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.in, "in", "", "problem JSON (omit to generate a random instance)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address for the API and /metrics")
	flag.Int64Var(&cfg.genSeed, "gen-seed", 1, "seed for the generated instance when -in is absent")
	flag.IntVar(&cfg.genNodes, "gen-nodes", 24, "processing nodes for the generated instance")
	flag.IntVar(&cfg.genComms, "gen-commodities", 3, "commodities for the generated instance")
	flag.Float64Var(&cfg.eta, "eta", 0.04, "gradient step scale η")
	flag.Float64Var(&cfg.eps, "eps", 0.2, "penalty coefficient ε")
	flag.IntVar(&cfg.iters, "iters", 4000, "per-solve iteration budget")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound for the per-commodity gradient waves (0 = GOMAXPROCS)")
	flag.Float64Var(&cfg.stationaryTol, "stationary-tol", 1e-3, "Theorem-2 stationarity tolerance ending a solve early (<0 disables)")
	flag.DurationVar(&cfg.debounce, "debounce", 25*time.Millisecond, "mutation coalescing window before a re-solve")
	flag.IntVar(&cfg.shards, "shards", 1, "solver shards commodities are partitioned across (1 = single engine)")
	flag.Uint64Var(&cfg.placementSalt, "placement-salt", 0, "consistent-hash salt for commodity→shard placement")
	flag.IntVar(&cfg.priceExchangeEvry, "price-exchange-every", 25, "gradient iterations each shard runs between price-exchange rounds")
	flag.Float64Var(&cfg.priceDamping, "price-damping", 0.5, "damping γ ∈ (0,1] of the external-usage exchange update")
	flag.StringVar(&cfg.eventsOut, "events-out", "", "write solver/server JSONL events to this file")
	flag.Int64Var(&cfg.eventsMaxBytes, "events-max-bytes", 0, "rotate -events-out once it exceeds this size, keeping one predecessor (0 = unbounded)")
	flag.IntVar(&cfg.traceCap, "trace-cap", 4096, "iteration-trace ring capacity served on /debug/trace (0 disables tracing)")
	flag.IntVar(&cfg.traceStride, "trace-stride", 10, "keep every k-th iteration in the trace ring")
	flag.IntVar(&cfg.spanCap, "span-cap", span.DefaultCapacity, "decision-lifecycle span ring capacity served on /debug/spans (0 disables span tracing)")
	flag.IntVar(&cfg.historyCap, "history-cap", 64, "snapshot generations retained for /history (<0 disables)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "flight-recorder journal directory (empty disables journaling; recovers state from an existing journal)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 256, "full problem checkpoint cadence in accepted mutations (<0 disables periodic checkpoints)")
	flag.Int64Var(&cfg.segmentBytes, "segment-bytes", 64<<20, "journal segment rotation threshold in bytes")
	flag.StringVar(&cfg.fsync, "fsync", "interval", "journal durability policy: interval, always, or never")
	flag.Float64Var(&cfg.sloMS, "slo-ms", 0, "decision-latency SLO in milliseconds; a breaching batch triggers a diagnostics capture (0 disables)")
	flag.StringVar(&cfg.captureDir, "capture-dir", "", "anomaly diagnostics bundle directory (default <journal-dir>/bundles when journaling)")
	flag.DurationVar(&cfg.runtimeSample, "runtime-sample", 10*time.Second, "runtime telemetry (goroutines, heap, GC) sampling period (0 disables)")
	flag.Parse()
	cfg.flagSet = make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { cfg.flagSet[f.Name] = true })
	if err := realMain(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "admissiond:", err)
		os.Exit(1)
	}
}

func loadProblem(cfg cliConfig) (*stream.Problem, error) {
	if cfg.in != "" {
		data, err := os.ReadFile(cfg.in)
		if err != nil {
			return nil, err
		}
		return stream.ParseProblem(data)
	}
	return randnet.Generate(randnet.Config{
		Seed: cfg.genSeed, Nodes: cfg.genNodes, Commodities: cfg.genComms,
	})
}

func realMain(cfg cliConfig) error {
	p, err := loadProblem(cfg)
	if err != nil {
		return err
	}

	// An existing journal overrides -in/-gen-*: the daemon resumes the
	// desired problem it held before the crash or restart, minus any
	// unsynced tail loss.
	if cfg.journalDir != "" {
		has, err := journal.HasJournal(cfg.journalDir)
		if err != nil {
			return err
		}
		if has {
			recd, err := journal.Recover(cfg.journalDir)
			if err != nil {
				return fmt.Errorf("journal recovery: %w", err)
			}
			p = recd.Problem
			fmt.Fprintf(os.Stderr,
				"admissiond: recovered from journal %s (checkpoint rev %d + %d mutations, torn tail: %v)\n",
				cfg.journalDir, recd.CheckpointRev, recd.MutationsApplied, recd.Log.Truncated)
			// Shard topology follows the journal like the problem does:
			// a daemon journaled with -shards 4 reboots sharded without
			// the operator re-passing the flags. Explicit flags win, so
			// a recovery can still deliberately re-shard.
			if s := recd.Solver; s != nil && s.Shards > 1 {
				if !cfg.flagSet["shards"] {
					cfg.shards = s.Shards
				}
				if !cfg.flagSet["placement-salt"] {
					cfg.placementSalt = s.PlacementSalt
				}
				if !cfg.flagSet["price-exchange-every"] && s.PriceExchangeEvery > 0 {
					cfg.priceExchangeEvry = s.PriceExchangeEvery
				}
				if !cfg.flagSet["price-damping"] && s.PriceDamping > 0 {
					cfg.priceDamping = s.PriceDamping
				}
				if cfg.shards > 1 {
					fmt.Fprintf(os.Stderr,
						"admissiond: restored shard topology from journal (%d shards, salt %d, exchange every %d, damping %g)\n",
						cfg.shards, cfg.placementSalt, cfg.priceExchangeEvry, cfg.priceDamping)
				}
			}
		}
	}

	var sink obs.Sink
	if cfg.eventsOut != "" {
		fs, err := obs.NewRotatingFileSink(cfg.eventsOut, cfg.eventsMaxBytes)
		if err != nil {
			return err
		}
		sink = fs
	}
	rec := obs.NewRecorder(obs.NewRegistry(), sink)
	defer rec.Close()

	var ring *trace.Ring
	if cfg.traceCap > 0 {
		ring = trace.New(cfg.traceCap, cfg.traceStride)
	}

	var spans *span.Tracer
	if cfg.spanCap > 0 {
		spans = span.New(cfg.spanCap, rec)
	}

	var jw *journal.Writer
	if cfg.journalDir != "" {
		policy, err := journal.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		jw, err = journal.Create(cfg.journalDir, journal.Options{
			SegmentBytes: cfg.segmentBytes,
			Fsync:        policy,
			Registry:     rec.Registry(),
		})
		if err != nil {
			return err
		}
		if cfg.captureDir == "" {
			cfg.captureDir = filepath.Join(cfg.journalDir, "bundles")
		}
	}

	if cfg.runtimeSample > 0 {
		stopSampler := obs.StartRuntimeSampler(rec.Registry(), cfg.runtimeSample)
		defer stopSampler()
	}

	s, err := server.New(p, server.Options{
		Epsilon:            cfg.eps,
		Eta:                cfg.eta,
		MaxIters:           cfg.iters,
		Workers:            cfg.workers,
		StationaryTol:      cfg.stationaryTol,
		Shards:             cfg.shards,
		PlacementSalt:      cfg.placementSalt,
		PriceExchangeEvery: cfg.priceExchangeEvry,
		PriceDamping:       cfg.priceDamping,
		Debounce:           cfg.debounce,
		Recorder:           rec,
		Trace:              ring,
		Spans:              spans,
		HistoryCap:         cfg.historyCap,
		Journal:            jw,
		CheckpointEvery:    cfg.checkpointEvery,
		SLO:                time.Duration(cfg.sloMS * float64(time.Millisecond)),
		CaptureDir:         cfg.captureDir,
	})
	if err != nil {
		if jw != nil {
			_ = jw.Close()
		}
		return err
	}

	h, err := s.Serve(cfg.addr, rec.Registry())
	if err != nil {
		_ = s.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "admissiond: serving admission API, /metrics, /debug/vars, /debug/pprof on %s\n", h.Addr())
	if cfg.ready != nil {
		cfg.ready(h.Addr())
	}

	// Block until a signal (or the test-injected stop), then drain.
	if cfg.stop != nil {
		<-cfg.stop
	} else {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig := <-ch
		fmt.Fprintf(os.Stderr, "admissiond: %v, shutting down\n", sig)
	}
	// Shutdown order matters: stop admitting (listener), drain the
	// solver, then seal the journal so the final fsync covers every
	// record the server wrote.
	if err := h.Close(); err != nil {
		_ = s.Close()
		if jw != nil {
			_ = jw.Close()
		}
		return err
	}
	if err := s.Close(); err != nil {
		if jw != nil {
			_ = jw.Close()
		}
		return err
	}
	if jw != nil {
		return jw.Close()
	}
	return nil
}
