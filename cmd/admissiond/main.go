// Command admissiond is the streaming admission server: it loads (or
// generates) a stream-processing problem instance, keeps the joint
// admission-control + routing solution converged as commodities
// arrive, change their offered rates, and depart, and serves the JSON
// API of internal/server plus live /metrics, /debug/vars and
// /debug/pprof on one listener.
//
//	go run ./cmd/netgen -seed 42 > instance.json
//	go run ./cmd/admissiond -in instance.json -addr :8080
//
//	# live rate update; the server re-solves warm-started
//	curl -X PATCH localhost:8080/v1/commodities/S1 -d '{"maxRate": 30}'
//	curl localhost:8080/v1/admitted
//
//	# solver introspection
//	curl localhost:8080/explain?commodity=S1   # bottleneck attribution
//	curl localhost:8080/history                # generation-over-generation diffs
//	curl localhost:8080/debug/trace            # sampled per-iteration solver state
//
// Without -in, a random instance is generated (-gen-seed, -gen-nodes,
// -gen-commodities), which is handy for demos and smoke tests.
// SIGINT/SIGTERM shut down gracefully, draining an in-flight solve.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/trace"
	"repro/internal/randnet"
	"repro/internal/server"
	"repro/internal/stream"
)

// cliConfig carries every flag so tests can drive realMain directly.
type cliConfig struct {
	in       string
	addr     string
	genSeed  int64
	genNodes int
	genComms int

	eta           float64
	eps           float64
	iters         int
	workers       int
	stationaryTol float64
	debounce      time.Duration

	eventsOut      string
	eventsMaxBytes int64
	traceCap       int
	traceStride    int
	spanCap        int
	historyCap     int

	// ready, when non-nil, receives the bound address once the API is
	// serving; stop, when non-nil, replaces signal-based shutdown.
	ready func(addr string)
	stop  chan struct{}
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.in, "in", "", "problem JSON (omit to generate a random instance)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address for the API and /metrics")
	flag.Int64Var(&cfg.genSeed, "gen-seed", 1, "seed for the generated instance when -in is absent")
	flag.IntVar(&cfg.genNodes, "gen-nodes", 24, "processing nodes for the generated instance")
	flag.IntVar(&cfg.genComms, "gen-commodities", 3, "commodities for the generated instance")
	flag.Float64Var(&cfg.eta, "eta", 0.04, "gradient step scale η")
	flag.Float64Var(&cfg.eps, "eps", 0.2, "penalty coefficient ε")
	flag.IntVar(&cfg.iters, "iters", 4000, "per-solve iteration budget")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound for the per-commodity gradient waves (0 = GOMAXPROCS)")
	flag.Float64Var(&cfg.stationaryTol, "stationary-tol", 1e-3, "Theorem-2 stationarity tolerance ending a solve early (<0 disables)")
	flag.DurationVar(&cfg.debounce, "debounce", 25*time.Millisecond, "mutation coalescing window before a re-solve")
	flag.StringVar(&cfg.eventsOut, "events-out", "", "write solver/server JSONL events to this file")
	flag.Int64Var(&cfg.eventsMaxBytes, "events-max-bytes", 0, "rotate -events-out once it exceeds this size, keeping one predecessor (0 = unbounded)")
	flag.IntVar(&cfg.traceCap, "trace-cap", 4096, "iteration-trace ring capacity served on /debug/trace (0 disables tracing)")
	flag.IntVar(&cfg.traceStride, "trace-stride", 10, "keep every k-th iteration in the trace ring")
	flag.IntVar(&cfg.spanCap, "span-cap", span.DefaultCapacity, "decision-lifecycle span ring capacity served on /debug/spans (0 disables span tracing)")
	flag.IntVar(&cfg.historyCap, "history-cap", 64, "snapshot generations retained for /history (<0 disables)")
	flag.Parse()
	if err := realMain(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "admissiond:", err)
		os.Exit(1)
	}
}

func loadProblem(cfg cliConfig) (*stream.Problem, error) {
	if cfg.in != "" {
		data, err := os.ReadFile(cfg.in)
		if err != nil {
			return nil, err
		}
		return stream.ParseProblem(data)
	}
	return randnet.Generate(randnet.Config{
		Seed: cfg.genSeed, Nodes: cfg.genNodes, Commodities: cfg.genComms,
	})
}

func realMain(cfg cliConfig) error {
	p, err := loadProblem(cfg)
	if err != nil {
		return err
	}

	var sink obs.Sink
	if cfg.eventsOut != "" {
		fs, err := obs.NewRotatingFileSink(cfg.eventsOut, cfg.eventsMaxBytes)
		if err != nil {
			return err
		}
		sink = fs
	}
	rec := obs.NewRecorder(obs.NewRegistry(), sink)
	defer rec.Close()

	var ring *trace.Ring
	if cfg.traceCap > 0 {
		ring = trace.New(cfg.traceCap, cfg.traceStride)
	}

	var spans *span.Tracer
	if cfg.spanCap > 0 {
		spans = span.New(cfg.spanCap, rec)
	}

	s, err := server.New(p, server.Options{
		Epsilon:       cfg.eps,
		Eta:           cfg.eta,
		MaxIters:      cfg.iters,
		Workers:       cfg.workers,
		StationaryTol: cfg.stationaryTol,
		Debounce:      cfg.debounce,
		Recorder:      rec,
		Trace:         ring,
		Spans:         spans,
		HistoryCap:    cfg.historyCap,
	})
	if err != nil {
		return err
	}

	h, err := s.Serve(cfg.addr, rec.Registry())
	if err != nil {
		_ = s.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "admissiond: serving admission API, /metrics, /debug/vars, /debug/pprof on %s\n", h.Addr())
	if cfg.ready != nil {
		cfg.ready(h.Addr())
	}

	// Block until a signal (or the test-injected stop), then drain.
	if cfg.stop != nil {
		<-cfg.stop
	} else {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig := <-ch
		fmt.Fprintf(os.Stderr, "admissiond: %v, shutting down\n", sig)
	}
	if err := h.Close(); err != nil {
		_ = s.Close()
		return err
	}
	return s.Close()
}
