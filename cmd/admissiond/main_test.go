package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/randnet"
)

// TestAdmissiondEndToEnd boots the daemon on a small generated
// topology, drives the public API over real HTTP — rate update,
// failure injection, metrics scrape — and shuts it down gracefully.
func TestAdmissiondEndToEnd(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 12, Commodities: 2, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	events := filepath.Join(t.TempDir(), "events.jsonl")

	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- realMain(cliConfig{
			in:            in,
			addr:          "127.0.0.1:0",
			eta:           0.04,
			eps:           0.2,
			iters:         2000,
			stationaryTol: 1e-3,
			debounce:      2 * time.Millisecond,
			eventsOut:     events,
			traceCap:      1024,
			traceStride:   2,
			spanCap:       512,
			historyCap:    16,
			ready:         func(a string) { addrCh <- a },
			stop:          stop,
		})
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// /healthz answers immediately; /readyz flips to 200 once the first
	// snapshot publishes (the nightly soak's startup wait).
	resp0, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status %d", resp0.StatusCode)
	}
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp0, err = http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp0.Body.Close()
		if resp0.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("GET /readyz never turned 200 (last %d)", resp0.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	waitSnapshot := func(minGen int64) map[string]any {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/snapshot")
			if err == nil {
				var snap map[string]any
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err == nil && resp.StatusCode == http.StatusOK {
					if gen, _ := snap["generation"].(float64); int64(gen) >= minGen {
						return snap
					}
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no snapshot generation ≥ %d", minGen)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	first := waitSnapshot(1)
	commodities := first["commodities"].([]any)
	name := commodities[0].(map[string]any)["name"].(string)

	// Live rate update over HTTP, carrying a client trace context so the
	// decision lifecycle is queryable under a known trace ID.
	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPatch,
		base+"/v1/commodities/"+name, bytes.NewReader([]byte(`{"maxRate": 3.5}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+clientTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status %d", resp.StatusCode)
	}

	snap := waitSnapshot(int64(first["generation"].(float64)) + 1)
	if snap["warm"] != true {
		t.Fatalf("rate update did not warm-start: %v", snap["warm"])
	}

	// The decision tree for that mutation is served on /debug/spans.
	resp, err = http.Get(base + "/debug/spans?trace=" + clientTrace)
	if err != nil {
		t.Fatal(err)
	}
	var spansPage struct {
		Spans []struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&spansPage)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/spans: status %d err %v", resp.StatusCode, err)
	}
	spanNames := map[string]bool{}
	var decisionLatency string
	for _, sp := range spansPage.Spans {
		spanNames[sp.Name] = true
		if sp.Name == "decision" {
			decisionLatency = sp.Attrs["decision_latency_s"]
		}
	}
	for _, want := range []string{"decision", "ingress", "coalesce", "solve", "publish"} {
		if !spanNames[want] {
			t.Fatalf("trace %s missing %q span; got %v", clientTrace, want, spanNames)
		}
	}
	if decisionLatency == "" {
		t.Fatal("decision span has no decision_latency_s attribute")
	}

	// Saturate the first commodity so the attribution has a bottleneck
	// to name, then read it back through /explain (the acceptance path).
	req, err = http.NewRequest(http.MethodPatch,
		base+"/v1/commodities/"+name, bytes.NewReader([]byte(`{"maxRate": 1000}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitSnapshot(int64(snap["generation"].(float64)) + 1)

	resp, err = http.Get(base + "/explain?commodity=0")
	if err != nil {
		t.Fatal(err)
	}
	var explained struct {
		Generation int64 `json:"generation"`
		Explain    struct {
			Name     string  `json:"name"`
			Admitted float64 `json:"admitted"`
			Offered  float64 `json:"offered"`
			Gap      float64 `json:"gap"`
			Binding  []struct {
				Name  string  `json:"name"`
				Kind  string  `json:"kind"`
				Price float64 `json:"price"`
			} `json:"binding"`
		} `json:"explain"`
	}
	err = json.NewDecoder(resp.Body).Decode(&explained)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain?commodity=0: status %d err %v", resp.StatusCode, err)
	}
	ex := explained.Explain
	if ex.Name != name || ex.Admitted <= 0 || ex.Offered != 1000 {
		t.Fatalf("explain payload wrong: %+v", ex)
	}
	if ex.Admitted > 999 {
		t.Fatalf("offering λ=1000 did not saturate the instance: admitted %g", ex.Admitted)
	}
	if len(ex.Binding) == 0 || ex.Binding[0].Price <= 0 {
		t.Fatalf("saturated commodity has no priced bottleneck: %+v", ex)
	}

	// /history shows the rate changes as admitted-rate deltas.
	resp, err = http.Get(base + "/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Generations []map[string]any `json:"generations"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hist)
	resp.Body.Close()
	if err != nil || len(hist.Generations) < 2 {
		t.Fatalf("GET /history: err %v, %d generations", err, len(hist.Generations))
	}

	// /debug/trace serves the sampled iteration ring.
	resp, err = http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Stride  int              `json:"stride"`
		Samples []map[string]any `json:"samples"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d err %v", resp.StatusCode, err)
	}
	if tr.Stride != 2 || len(tr.Samples) == 0 {
		t.Fatalf("trace ring empty or misconfigured: stride %d, %d samples", tr.Stride, len(tr.Samples))
	}

	// Metrics are served from the same listener and count the solves.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if _, err := prom.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`streamopt_server_solves_total{start="cold"}`,
		`streamopt_server_solves_total{start="warm"}`,
		"streamopt_server_generation",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// Graceful shutdown drains and exits cleanly.
	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// The JSONL event stream recorded server solves.
	evData, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(evData), `"type":"server_solve"`) {
		t.Fatalf("events file has no server_solve records:\n%.500s", evData)
	}
	if !strings.Contains(string(evData), `"type":"server_mutation"`) {
		t.Fatalf("events file has no server_mutation records:\n%.500s", evData)
	}
	if !strings.Contains(string(evData), `"type":"attribution"`) {
		t.Fatalf("events file has no attribution records:\n%.500s", evData)
	}
	if !strings.Contains(string(evData), `"type":"server_trace"`) {
		t.Fatalf("events file has no server_trace records:\n%.500s", evData)
	}
	if !strings.Contains(string(evData), `"type":"span"`) {
		t.Fatalf("events file has no span records:\n%.500s", evData)
	}
	if !strings.Contains(string(evData), `"type":"http_request"`) {
		t.Fatalf("events file has no http_request records:\n%.500s", evData)
	}
}

// TestAdmissiondJournalRecovery boots the daemon with a flight
// recorder, mutates state over HTTP, restarts it against the same
// journal directory, and asserts the mutated state survived.
func TestAdmissiondJournalRecovery(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 7, Nodes: 10, Commodities: 2, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jdir := filepath.Join(t.TempDir(), "journal")
	name := p.Commodities[0].Name

	boot := func(in string) (base string, stop chan struct{}, errCh chan error) {
		t.Helper()
		addrCh := make(chan string, 1)
		stop = make(chan struct{})
		errCh = make(chan error, 1)
		go func() {
			errCh <- realMain(cliConfig{
				in:              in,
				addr:            "127.0.0.1:0",
				eta:             0.04,
				eps:             0.2,
				iters:           2000,
				stationaryTol:   1e-3,
				debounce:        2 * time.Millisecond,
				historyCap:      16,
				journalDir:      jdir,
				checkpointEvery: 4,
				fsync:           "interval",
				runtimeSample:   time.Second,
				ready:           func(a string) { addrCh <- a },
				stop:            stop,
			})
		}()
		select {
		case a := <-addrCh:
			return "http://" + a, stop, errCh
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	shutdown := func(stop chan struct{}, errCh chan error) {
		t.Helper()
		close(stop)
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never exited")
		}
	}
	maxRate := func(base string) float64 {
		t.Helper()
		resp, err := http.Get(base + "/v1/problem")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var prob struct {
			Commodities []struct {
				Name    string  `json:"name"`
				MaxRate float64 `json:"maxRate"`
			} `json:"commodities"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&prob); err != nil {
			t.Fatal(err)
		}
		for _, c := range prob.Commodities {
			if c.Name == name {
				return c.MaxRate
			}
		}
		t.Fatalf("commodity %s missing from /v1/problem", name)
		return 0
	}

	base, stop, errCh := boot(in)
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/commodities/"+name,
		strings.NewReader(`{"maxRate": 3.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status %d", resp.StatusCode)
	}
	if got := maxRate(base); got != 3.5 {
		t.Fatalf("maxRate after PATCH = %v", got)
	}
	// The journal's metrics are live on /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(bytes.Buffer)
	if _, err := mbody.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, want := range []string{"streamopt_journal_records_total", "streamopt_go_goroutines"} {
		if !strings.Contains(mbody.String(), want) {
			t.Fatalf("/metrics lacks %s", want)
		}
	}
	shutdown(stop, errCh)

	// Second boot: no -in; state must come from the journal.
	base, stop, errCh = boot("")
	if got := maxRate(base); got != 3.5 {
		t.Fatalf("maxRate after recovery = %v, want 3.5", got)
	}
	shutdown(stop, errCh)
}

// TestAdmissiondShardTopologyRecovery journals a sharded daemon, then
// reboots from the journal alone (no -shards flag): the restart
// checkpoint's recorded topology must come back with the problem.
func TestAdmissiondShardTopologyRecovery(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 7, Nodes: 10, Commodities: 2, Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jdir := filepath.Join(t.TempDir(), "journal")

	boot := func(in string, shards int) (base string, stop chan struct{}, errCh chan error) {
		t.Helper()
		addrCh := make(chan string, 1)
		stop = make(chan struct{})
		errCh = make(chan error, 1)
		go func() {
			errCh <- realMain(cliConfig{
				in:                in,
				addr:              "127.0.0.1:0",
				eta:               0.04,
				eps:               0.2,
				iters:             2000,
				stationaryTol:     1e-3,
				debounce:          2 * time.Millisecond,
				shards:            shards,
				placementSalt:     3,
				priceExchangeEvry: 25,
				priceDamping:      0.5,
				journalDir:        jdir,
				checkpointEvery:   4,
				fsync:             "interval",
				ready:             func(a string) { addrCh <- a },
				stop:              stop,
			})
		}()
		select {
		case a := <-addrCh:
			return "http://" + a, stop, errCh
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	shardCount := func(base string) string {
		t.Helper()
		// The gauge appears once the first sharded solve publishes;
		// poll past the boot solve.
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body := new(bytes.Buffer)
			_, err = body.ReadFrom(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(body.String(), "\n") {
				if strings.HasPrefix(line, "streamopt_shard_count ") {
					return strings.TrimPrefix(line, "streamopt_shard_count ")
				}
			}
			if time.Now().After(deadline) {
				return ""
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	shutdown := func(stop chan struct{}, errCh chan error) {
		t.Helper()
		close(stop)
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never exited")
		}
	}

	base, stop, errCh := boot(in, 2)
	if got := shardCount(base); got != "2" {
		t.Fatalf("first boot shard count = %q, want 2", got)
	}
	shutdown(stop, errCh)

	// Reboot from the journal alone: shards stays zero in the config
	// (the operator passed no flags), so the topology must be adopted
	// from the recorded restart checkpoint.
	base, stop, errCh = boot("", 0)
	if got := shardCount(base); got != "2" {
		t.Fatalf("recovered shard count = %q, want 2 (topology not restored from journal)", got)
	}
	shutdown(stop, errCh)
}
