package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/stream"
)

const flashcrowd = "../../examples/scenarios/flashcrowd.json"

func run(t *testing.T, cfg config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := realMain(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Fixed seed ⇒ byte-identical event streams across CLI runs.
func TestEventsAreByteIdentical(t *testing.T) {
	cfg := config{scenario: flashcrowd, scale: 1, events: true}
	a, b := run(t, cfg), run(t, cfg)
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("two -events runs with the same seed printed different streams")
	}
	cfg.scale = 2
	if bytes.Equal(a, run(t, cfg)) {
		t.Fatal("-scale 2 printed the same stream as -scale 1")
	}
}

// Two -sweep runs must drive byte-identical event streams at every
// scale (the report pins each stream's SHA-256) and agree on the knee.
func TestSweepIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full sweeps; skipped in -short")
	}
	cfg := config{
		scenario: flashcrowd,
		sweep:    true,
		scales:   "0.25,1,4,10",
		sync:     1,
		timeout:  30 * time.Second,
		debounce: -time.Nanosecond,
		iters:    200,
	}
	parse := func(data []byte) loadgen.Report {
		var rep loadgen.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := parse(run(t, cfg)), parse(run(t, cfg))
	if len(a.Points) != 4 || len(b.Points) != 4 {
		t.Fatalf("want 4 points, got %d and %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].EventStreamSHA256 == "" ||
			a.Points[i].EventStreamSHA256 != b.Points[i].EventStreamSHA256 {
			t.Fatalf("scale %g drove different event streams across runs", a.Points[i].Scale)
		}
		if a.Points[i].Mutations != b.Points[i].Mutations {
			t.Fatalf("scale %g applied different mutation counts", a.Points[i].Scale)
		}
	}
	if a.Knee == nil || b.Knee == nil || a.Knee.Scale != b.Knee.Scale {
		t.Fatalf("knee disagreement: %+v vs %+v", a.Knee, b.Knee)
	}
}

// -base prints a commodity-free instance that round-trips through the
// problem parser and boots a server — the documented way to stand up a
// remote admissiond for -target runs.
func TestBaseInstanceBootsServer(t *testing.T) {
	data := run(t, config{scenario: flashcrowd, scale: 1, base: true})
	p, err := stream.ParseProblem(data)
	if err != nil {
		t.Fatalf("-base output does not parse: %v", err)
	}
	if len(p.Commodities) != 0 {
		t.Fatalf("base instance has %d commodities, want 0", len(p.Commodities))
	}
	srv, err := server.New(p, server.Options{Debounce: -time.Nanosecond, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatalf("server.New on base instance: %v", err)
	}
	srv.Close()
}

func TestBadFlagCombos(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(&buf, config{scenario: flashcrowd}); err == nil {
		t.Fatal("no mode selected should error")
	}
	if err := realMain(&buf, config{scenario: flashcrowd, events: true, sweep: true}); err == nil {
		t.Fatal("two modes should error")
	}
	if err := realMain(&buf, config{events: true}); err == nil {
		t.Fatal("missing -scenario should error")
	}
	if err := realMain(&buf, config{scenario: flashcrowd, sweep: true, scales: "1,-2"}); err == nil {
		t.Fatal("negative scale should error")
	}
}

// TestRunJournalRecordsReplayableTrajectory drives a run through the
// flight recorder and verifies the journal replays with zero
// trajectory mismatches and carries the compiled stream's identity.
func TestRunJournalRecordsReplayableTrajectory(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	run(t, config{
		scenario: flashcrowd,
		scale:    1,
		run:      true,
		sync:     1,
		timeout:  30 * time.Second,
		debounce: -1,
		journal:  jdir,
	})

	log, err := journal.ReadDir(jdir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(flashcrowd)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := loadgen.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := loadgen.Compile(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSHA, err := c.EventStreamHash()
	if err != nil {
		t.Fatal(err)
	}
	if got := log.StreamSHA(); got != wantSHA {
		t.Fatalf("journal header stream SHA = %q, compiled stream = %q", got, wantSHA)
	}

	rep, err := replay.Verify(jdir, replay.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("recorded run did not replay cleanly")
	}
	if rep.Digests == 0 || rep.Mutations == 0 {
		t.Fatalf("replay verified nothing: %+v", rep)
	}
}

func TestJournalFlagCombos(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(&buf, config{scenario: flashcrowd, events: true, journal: "x"}); err == nil {
		t.Fatal("-journal without -run should error")
	}
	err := realMain(&buf, config{
		scenario: flashcrowd, run: true, target: "http://127.0.0.1:1",
		journal: "x", sync: 1, timeout: time.Second,
	})
	if err == nil {
		t.Fatal("-journal with -target should error")
	}
}
