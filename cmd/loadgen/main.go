// Command loadgen compiles declarative workload scenarios into
// deterministic event streams and drives them against the admission
// service.
//
// Modes (pick one):
//
//	-events   print the compiled event stream as JSONL (pure, seeded:
//	          the same scenario and -scale always print identical bytes)
//	-base     print the scenario's base network (no commodities) as
//	          instance JSON, suitable for `admissiond -in`
//	-run      drive the scenario once and print the run result
//	-sweep    sweep offered load across -scales and print the
//	          saturation report with the utility knee located
//
// The default backend is an in-process admission server built from the
// scenario's generated network; -target drives a live admissiond over
// HTTP instead. The remote server must be serving the scenario's base
// network — boot it with `-base`:
//
//	go run ./cmd/loadgen -scenario s.json -base > base.json
//	go run ./cmd/admissiond -in base.json -addr :8080 &
//	go run ./cmd/loadgen -scenario s.json -run -target http://localhost:8080
//
//	go run ./cmd/loadgen -scenario examples/scenarios/flashcrowd.json -sweep
//	go run ./cmd/loadgen -scenario examples/scenarios/churn.json -run -realtime -target http://localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/server"
)

type config struct {
	scenario string
	scale    float64
	events   bool
	base     bool
	run      bool
	sweep    bool
	scales   string
	target   string
	realtime bool
	sync     int
	timeout  time.Duration
	debounce time.Duration
	iters    int
	jsonlOut string
	out      string
	journal  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.scenario, "scenario", "", "scenario JSON path (required)")
	flag.Float64Var(&cfg.scale, "scale", 1, "offered-load scale factor for -events/-run")
	flag.BoolVar(&cfg.events, "events", false, "print the compiled event stream as JSONL and exit")
	flag.BoolVar(&cfg.base, "base", false, "print the scenario's base network as instance JSON (for admissiond -in)")
	flag.BoolVar(&cfg.run, "run", false, "drive the scenario once and print the run result")
	flag.BoolVar(&cfg.sweep, "sweep", false, "sweep offered load and print the saturation report")
	flag.StringVar(&cfg.scales, "scales", "0.25,0.5,1,2,4", "comma-separated scale factors for -sweep")
	flag.StringVar(&cfg.target, "target", "", "drive a live admissiond at this base URL instead of in-process")
	flag.BoolVar(&cfg.realtime, "realtime", false, "honor the scenario's epochMillis pacing on the wall clock")
	flag.IntVar(&cfg.sync, "sync", 1, "measure decision latency every N mutating epochs (0: only at run end)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-sync snapshot wait bound")
	flag.DurationVar(&cfg.debounce, "debounce", 25*time.Millisecond, "in-process server solve debounce (-1ns: solve immediately)")
	flag.IntVar(&cfg.iters, "iters", 0, "in-process server per-solve iteration budget (0: server default)")
	flag.StringVar(&cfg.jsonlOut, "events-out", "", "append driver/analyzer obs events as JSONL to this file")
	flag.StringVar(&cfg.out, "out", "", "write the result/report here instead of stdout")
	flag.StringVar(&cfg.journal, "journal", "", "record the -run through a flight-recorder journal in this directory (in-process only; verify with cmd/replay)")
	flag.Parse()
	if err := realMain(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func realMain(stdout io.Writer, cfg config) error {
	if cfg.scenario == "" {
		return fmt.Errorf("-scenario is required")
	}
	modes := 0
	for _, m := range []bool{cfg.events, cfg.base, cfg.run, cfg.sweep} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("pick exactly one of -events, -base, -run, -sweep")
	}
	if cfg.journal != "" && !cfg.run {
		return fmt.Errorf("-journal only applies to -run")
	}
	data, err := os.ReadFile(cfg.scenario)
	if err != nil {
		return err
	}
	sc, err := loadgen.ParseScenario(data)
	if err != nil {
		return err
	}

	out := stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var rec *obs.Recorder
	if cfg.jsonlOut != "" {
		sink, err := obs.NewFileSink(cfg.jsonlOut)
		if err != nil {
			return err
		}
		defer sink.Close()
		rec = obs.NewRecorder(obs.NewRegistry(), sink)
	}

	switch {
	case cfg.events:
		c, err := loadgen.Compile(sc, cfg.scale)
		if err != nil {
			return err
		}
		stream, err := c.EventStreamJSONL()
		if err != nil {
			return err
		}
		_, err = out.Write(stream)
		return err

	case cfg.base:
		c, err := loadgen.Compile(sc, cfg.scale)
		if err != nil {
			return err
		}
		data, err := json.Marshal(c.Base)
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err

	case cfg.run:
		c, err := loadgen.Compile(sc, cfg.scale)
		if err != nil {
			return err
		}
		be, cleanup, err := backend(cfg, c, rec)
		if err != nil {
			return err
		}
		res, err := loadgen.Run(c, be, driverOptions(cfg, rec))
		cleanup() // close the server (and seal the journal) before reporting
		if err != nil {
			return err
		}
		return writeJSON(out, res)

	default: // -sweep
		scales, err := parseScales(cfg.scales)
		if err != nil {
			return err
		}
		opts := loadgen.SweepOptions{
			Scales:   scales,
			Server:   serverOptions(cfg, rec),
			Driver:   driverOptions(cfg, rec),
			Recorder: rec,
		}
		if cfg.target != "" {
			opts.Backend = func(*loadgen.Compiled) (loadgen.Backend, func(), error) {
				return loadgen.HTTP{Base: cfg.target}, func() {}, nil
			}
		}
		rep, err := loadgen.Sweep(sc, opts)
		if err != nil {
			return err
		}
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	}
}

func serverOptions(cfg config, rec *obs.Recorder) server.Options {
	return server.Options{
		Debounce: cfg.debounce,
		MaxIters: cfg.iters,
		Recorder: rec,
	}
}

func driverOptions(cfg config, rec *obs.Recorder) loadgen.DriverOptions {
	return loadgen.DriverOptions{
		Recorder:    rec,
		SyncEvery:   cfg.sync,
		SyncTimeout: cfg.timeout,
		RealTime:    cfg.realtime,
	}
}

func backend(cfg config, c *loadgen.Compiled, rec *obs.Recorder) (loadgen.Backend, func(), error) {
	if cfg.target != "" {
		if cfg.journal != "" {
			return nil, nil, fmt.Errorf("-journal records the in-process server; it cannot be combined with -target")
		}
		return loadgen.HTTP{Base: cfg.target}, func() {}, nil
	}
	opts := serverOptions(cfg, rec)
	var jw *journal.Writer
	if cfg.journal != "" {
		// Stamp the compiled stream's identity into the journal header
		// so a replay can be tied back to the exact workload.
		sha, err := c.EventStreamHash()
		if err != nil {
			return nil, nil, err
		}
		jw, err = journal.Create(cfg.journal, journal.Options{StreamSHA: sha})
		if err != nil {
			return nil, nil, err
		}
		opts.Journal = jw
	}
	srv, err := server.New(c.Base, opts)
	if err != nil {
		if jw != nil {
			_ = jw.Close()
		}
		return nil, nil, err
	}
	return loadgen.InProc{S: srv}, func() {
		srv.Close()
		if jw != nil {
			_ = jw.Close()
		}
	}, nil
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad scale %q (want positive numbers, e.g. -scales 0.5,1,2)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scales is empty")
	}
	return out, nil
}

func writeJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
