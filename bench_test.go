// Package repro's root benchmark harness: one bench per reproduced
// table/figure (see DESIGN.md §5 for the experiment index), plus
// per-iteration microbenchmarks of the moving parts. Full paper-scale
// outputs come from `go run ./cmd/experiments`; the benches here use
// reduced budgets so `go test -bench=.` stays in the minutes range.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/backpressure"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/obs/span"
	"repro/internal/placement"
	"repro/internal/qsim"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// paperInstance builds the §6 headline instance (40 nodes, 3
// commodities, ε = 0.2). Seed 2 is the repo's reference instance: the
// gradient algorithm reaches 95% of the LP optimum in ≈950 iterations
// there, matching the paper's "about 1000".
func paperInstance(b *testing.B) *transform.Extended {
	b.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// benchScale trims budgets so a full -bench=. pass stays fast.
func benchScale() experiments.Scale {
	return experiments.Scale{GradIters: 2000, BPIters: 20000, Nodes: 24, Commodities: 2}
}

// --- F4 / T1: Figure 4 convergence (gradient vs back-pressure vs LP) ---

func BenchmarkF4GradientTo95(b *testing.B) {
	x := paperInstance(b)
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := gradient.New(x, gradient.Config{Eta: 0.04})
		_, hit, err := eng.RunToTarget(ref.Utility, 0.95, 20000)
		if err != nil {
			b.Fatal(err)
		}
		if hit < 0 {
			b.Fatal("gradient never reached 95% of optimal")
		}
		b.ReportMetric(float64(hit), "iters-to-95%")
	}
}

func BenchmarkF4BackPressureTo95(b *testing.B) {
	// Reduced instance: at paper scale back-pressure needs ~1e5
	// iterations (that is the point of Figure 4), which is too slow for
	// a default bench pass; cmd/experiments runs the full version.
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 24, Commodities: 2})
	if err != nil {
		b.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := backpressure.New(x, backpressure.Config{})
		hit := -1
		for it := 0; it < 120000; it++ {
			if eng.Step().Cumulative >= 0.95*ref.Utility {
				hit = it
				break
			}
		}
		if hit < 0 {
			b.Fatal("back-pressure never reached 95% of optimal")
		}
		b.ReportMetric(float64(hit), "iters-to-95%")
	}
}

func BenchmarkF4ReferenceLP(b *testing.B) {
	x := paperInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refopt.Solve(x, refopt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: η sweep ---

func BenchmarkT2EtaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunT2(42, []float64{0.01, 0.04, 0.16}, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T3: protocol rounds vs depth ---

func BenchmarkT3DepthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunT3(3, []int{3, 6, 12}, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T4: ε sweep ---

func BenchmarkT4EpsilonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunT4(42, []float64{0.5, 0.1}, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: concave utilities ---

func BenchmarkE5ConcaveUtilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE5(42, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: shrinkage ablation ---

func BenchmarkE6ShrinkageAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE6(42, []float64{0, 1}, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: dynamic tracking (warm vs cold) ---

func BenchmarkE7WarmStart(b *testing.B) {
	x := paperInstance(b)
	base := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := base.Run(3000, nil); err != nil {
		b.Fatal(err)
	}
	warmFrom := base.Routing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := gradient.NewFrom(x, warmFrom, gradient.Config{Eta: 0.04})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7ColdStart(b *testing.B) {
	x := paperInstance(b)
	for i := 0; i < b.N; i++ {
		eng := gradient.New(x, gradient.Config{Eta: 0.04})
		if _, err := eng.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DESIGN.md ablation: loop-freedom blocking protocol on/off ---

func BenchmarkBlockingEnabled(b *testing.B) {
	x := paperInstance(b)
	for i := 0; i < b.N; i++ {
		eng := gradient.New(x, gradient.Config{Eta: 0.04})
		if _, err := eng.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockingDisabled(b *testing.B) {
	x := paperInstance(b)
	for i := 0; i < b.N; i++ {
		eng := gradient.New(x, gradient.Config{Eta: 0.04, DisableBlocking: true})
		if _, err := eng.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-iteration microbenchmarks ---

func BenchmarkGradientIteration(b *testing.B) {
	x := paperInstance(b)
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkDistIteration(b *testing.B) {
	x := paperInstance(b)
	rt := dist.New(x, gradient.Config{Eta: 0.04})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackPressureIteration(b *testing.B) {
	x := paperInstance(b)
	eng := backpressure.New(x, backpressure.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkFlowEvaluate(b *testing.B) {
	x := paperInstance(b)
	r := flow.NewInitial(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.Evaluate(r)
	}
}

// BenchmarkEvaluate measures the workspace form: the same forward sweep
// as BenchmarkFlowEvaluate but reusing one preallocated Usage, the way
// the engines call it — the delta between the two benches is the
// allocation cost the arena refactor removed.
func BenchmarkEvaluate(b *testing.B) {
	x := paperInstance(b)
	r := flow.NewInitial(x)
	u := flow.NewUsage(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.EvaluateInto(u, r)
	}
}

// BenchmarkStepParallel exercises the per-commodity worker pool on a
// many-commodity instance (8 commodities, the E6 shape). Trajectories
// are identical across worker counts (see internal/gradient's
// determinism tests); only the wall clock may differ, and only on
// multi-core hardware.
func BenchmarkStepParallel(b *testing.B) {
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 32, Layers: 4, Commodities: 8})
	if err != nil {
		b.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := gradient.New(x, gradient.Config{Eta: 0.04, Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

func BenchmarkMarginalCostWave(b *testing.B) {
	x := paperInstance(b)
	u := flow.Evaluate(flow.NewInitial(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < x.NumCommodities(); j++ {
			gradient.ComputeMarginals(u, j)
		}
	}
}

func BenchmarkTransformBuild(b *testing.B) {
	p, err := randnet.Generate(randnet.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Build(p, transform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandnetGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := randnet.Generate(randnet.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Solve(b *testing.B) {
	p, err := stream.Figure1(stream.Figure1Config{
		ServerCapacity: 10, Bandwidth: 40, MaxRate1: 20, MaxRate2: 20,
		TaskBeta: map[string]float64{"B": 0.5, "E": 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := gradient.New(x, gradient.Config{Eta: 0.05})
		if _, err := eng.Run(1000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPWLReference(b *testing.B) {
	p, err := randnet.Generate(randnet.Config{
		Seed: 42, Nodes: 24, Commodities: 2,
		Utility: func(int) utility.Function { return utility.Log{Weight: 10, Scale: 1} },
	})
	if err != nil {
		b.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refopt.Solve(x, refopt.Options{Segments: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: failure recovery across ε ---

func BenchmarkE8FailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE8(2, []float64{0.2}, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Adaptive step-size controller vs fixed η ---

func BenchmarkAdaptiveEngine(b *testing.B) {
	x := paperInstance(b)
	for i := 0; i < b.N; i++ {
		eng := gradient.NewAdaptive(x, gradient.AdaptiveConfig{})
		eng.Run(500)
	}
}

// --- Queue-level validation of the optimized plan ---

func BenchmarkQsimReplay(b *testing.B) {
	x := paperInstance(b)
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(3000, nil); err != nil {
		b.Fatal(err)
	}
	r := eng.Routing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qsim.Run(r, qsim.Config{Ticks: 2000, Arrivals: qsim.Poisson, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Path decomposition ---

func BenchmarkDecomposePaths(b *testing.B) {
	x := paperInstance(b)
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(3000, nil); err != nil {
		b.Fatal(err)
	}
	u := eng.Solution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < x.NumCommodities(); j++ {
			if _, err := flow.DecomposePaths(u, j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Operator placement (the §2 assumption, built) ---

func BenchmarkPlacementSearch(b *testing.B) {
	servers := make([]stream.ServerSpec, 8)
	for i := range servers {
		servers[i] = stream.ServerSpec{
			Name:     string(rune('a' + i)),
			Capacity: float64(10 + 10*i),
		}
	}
	streams := []stream.StreamSpec{
		{
			Name:    "s1",
			MaxRate: 60,
			Utility: utility.Linear{Slope: 1},
			Tasks: []stream.Task{
				{Name: "A", Beta: 1, Cost: 1},
				{Name: "B", Beta: 0.5, Cost: 2},
				{Name: "C", Beta: 1, Cost: 1},
			},
		},
		{
			Name:    "s2",
			MaxRate: 40,
			Utility: utility.Linear{Slope: 1},
			Tasks: []stream.Task{
				{Name: "D", Beta: 2, Cost: 1},
				{Name: "E", Beta: 1, Cost: 1},
			},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Place(servers, streams, placement.Config{Seed: int64(i), Replication: 2, SwapBudget: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Decision-lifecycle tracing (internal/obs/span) ---

// BenchmarkDecisionSpan prices one traced decision: a root span with
// two annotated children, the shape the admission server produces per
// mutation. The ring is sized so the bench wraps it, covering the
// steady-state (evicting) path.
func BenchmarkDecisionSpan(b *testing.B) {
	tr := span.New(1024, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.Start("decision", span.Context{})
		solve := tr.Start("solve", root.Context())
		solve.SetAttrInt("mutations_coalesced", 1)
		solve.End()
		root.SetAttrInt("generation", int64(i))
		root.End()
	}
}

// BenchmarkDecisionSpanNil is the disabled path — a nil tracer must
// stay ≤1 alloc/op (it is in fact 0; benchdiff gates regressions).
func BenchmarkDecisionSpanNil(b *testing.B) {
	var tr *span.Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.Start("decision", span.Context{})
		solve := tr.Start("solve", root.Context())
		solve.SetAttrInt("mutations_coalesced", 1)
		solve.End()
		root.SetAttrInt("generation", int64(i))
		root.End()
	}
}

// --- Scenario-driven load generation (internal/loadgen) ---

// BenchmarkDriverThroughput prices one full driven scenario: compile a
// seeded 800-epoch lognormal workload over 8 commodities, then stream
// every epoch's rate batch through the in-process admission server
// (default debounce coalescing the solver wakes) and barrier on the
// final snapshot. The CI smoke test asserts the derived rate stays
// ≥10k mutations/sec; this bench tracks the absolute cost.
func BenchmarkDriverThroughput(b *testing.B) {
	sc, err := loadgen.ParseScenario([]byte(`{
		"name": "bench", "seed": 3, "epochs": 800,
		"network": {"nodes": 24, "layers": 3},
		"cohorts": [{
			"name": "hot", "count": 8,
			"arrival": {"type": "immediate"},
			"rate": {"type": "lognormal", "median": 5, "sigma": 0.5}
		}]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	c, err := loadgen.Compile(sc, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := server.New(c.Base, server.Options{MaxIters: 100, Logf: func(string, ...any) {}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := loadgen.Run(c, loadgen.InProc{S: srv}, loadgen.DriverOptions{SyncTimeout: 60 * time.Second})
		srv.Close()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MutationsPerSec, "mut/s")
	}
}

// --- Flight recorder (internal/journal) ---

// BenchmarkServerMutation prices steady-state mutation handling with
// journaling DISABLED — the acceptance gate for the flight recorder is
// that wiring it in costs the disabled path at most one alloc/op
// (benchdiff's alloc tolerance enforces this against the baseline).
// Debounce is huge so the solver loop stays parked and the measurement
// isolates the mutate() path.
func BenchmarkServerMutation(b *testing.B) {
	p, err := randnet.Generate(randnet.Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	name := p.Commodities[0].Name
	srv, err := server.New(p, server.Options{
		Debounce: time.Hour,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.SetMaxRate(name, 10+float64(i%7)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerMutationJournaled is the same path writing through
// the flight recorder (fsync off) — the absolute cost of a journaled
// admission decision.
func BenchmarkServerMutationJournaled(b *testing.B) {
	p, err := randnet.Generate(randnet.Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	name := p.Commodities[0].Name
	jw, err := journal.Create(b.TempDir(), journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer jw.Close()
	srv, err := server.New(p, server.Options{
		Debounce: time.Hour,
		Journal:  jw,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.SetMaxRate(name, 10+float64(i%7)); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedInstance is the shard benches' workload: a random instance
// measured to reach the 1e-4 stationarity gap well inside the budget
// both unsharded and under the 4-shard dual decomposition (the same
// instance the server shard tests calibrate against).
func shardedInstance(b *testing.B) *stream.Problem {
	b.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 24, Commodities: 4})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkShardedSolve prices a full cold sharded solve: subset
// builds on all four shards plus the price-exchange rounds to
// convergence. Compare with BenchmarkE7ColdStart for the single-engine
// cost of the same kind of work.
func BenchmarkShardedSolve(b *testing.B) {
	p := shardedInstance(b)
	coord := shard.New(shard.Config{
		Shards: 4, Salt: 7, Eta: 0.04, MaxIters: 12000, StationaryTol: 1e-4,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Apply(p, nil); err != nil {
			b.Fatal(err)
		}
		res := coord.Solve(context.Background())
		if res.Err != nil || !res.Converged {
			b.Fatalf("sharded solve: converged=%v err=%v", res.Converged, res.Err)
		}
	}
}

// BenchmarkPriceExchange prices one coordinator round at a stationary
// point — per-shard stationarity checks, the shared-usage merge, shadow
// prices, and the damped external update — i.e. the pure coordination
// overhead a sharded deployment pays per exchange, with no gradient
// steps mixed in.
func BenchmarkPriceExchange(b *testing.B) {
	p := shardedInstance(b)
	coord := shard.New(shard.Config{
		Shards: 4, Salt: 7, Eta: 0.04, MaxIters: 12000, StationaryTol: 1e-4,
		ExchangeEvery: 1,
	})
	if _, err := coord.Apply(p, nil); err != nil {
		b.Fatal(err)
	}
	if res := coord.Solve(context.Background()); res.Err != nil || !res.Converged {
		b.Fatalf("warmup solve: converged=%v err=%v", res.Converged, res.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Already stationary: Solve runs exactly one exchange round and
		// observes convergence.
		if res := coord.Solve(context.Background()); !res.Converged {
			b.Fatal("stationary solve did not converge in one round")
		}
	}
}

// BenchmarkJournalAppend prices one framed, CRC'd record append
// (buffered, fsync off).
func BenchmarkJournalAppend(b *testing.B) {
	jw, err := journal.Create(b.TempDir(), journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer jw.Close()
	payload := []byte(`{"rate":42.5}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := jw.Append(journal.Record{
			Kind:     journal.KindMutation,
			Rev:      int64(i + 2),
			Mutation: &journal.Mutation{Op: journal.OpSetRate, Target: "S1", Payload: payload},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sparse subgraph representation (E13) ---

// scale10kInstance generates the J=10k workload the sparse-subgraph
// representation targets: a 48-server shared core carrying 10,000
// commodities whose member subgraphs are 6-hop chains, so each
// commodity touches O(path) of the extended graph, not O(n+m).
func scale10kInstance(b *testing.B) *stream.Problem {
	b.Helper()
	p, err := randnet.GenerateSparse(randnet.Config{
		Seed: 13, Nodes: 48, Layers: 6, Commodities: 10000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkBuildSubset prices one shard's cold subset build of a
// 4-shard J=10k deployment — the boot-time phase the ROADMAP measured
// as dominated by the dense O(J·(n+m)) per-commodity tables before the
// sparse Subgraph representation.
func BenchmarkBuildSubset(b *testing.B) {
	p := scale10kInstance(b)
	const shards = 4
	var incl []int
	for gi := range p.Commodities {
		if shard.Place(p.Commodities[gi].Name, 7, shards) == 0 {
			incl = append(incl, gi)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		x, err := transform.Build(p, transform.Options{Commodities: incl})
		if err != nil {
			b.Fatal(err)
		}
		bytes = x.BuildBytes()
	}
	b.ReportMetric(float64(bytes)/float64(len(incl)), "bytes/commodity")
}

// BenchmarkEvaluateSparse prices one full flow evaluation across all
// 10k commodities with a reused workspace: O(Σ_j member) work and zero
// allocations, where the dense layout swept J·(n+m) rows.
func BenchmarkEvaluateSparse(b *testing.B) {
	p := scale10kInstance(b)
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := flow.NewInitial(x)
	ws := flow.NewUsage(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.EvaluateInto(ws, r)
	}
}
