// End-to-end cross-validation on the repo's reference instance (§6
// configuration, randnet seed 2): every solver and substrate must tell
// one consistent story. These tests take a few seconds each and tie the
// whole pipeline together — model → transform → optimize (three ways) →
// reference LP → path decomposition → queue-level replay.
package repro

import (
	"math"
	"testing"

	"repro/internal/backpressure"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/qsim"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

func referenceInstance(t testing.TB) *transform.Extended {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestEndToEndAllSolversAgree(t *testing.T) {
	x := referenceInstance(t)
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Utility < 40 || ref.Utility > 60 {
		t.Fatalf("reference optimum %g outside the expected band for seed 2", ref.Utility)
	}

	// Gradient (fixed η), adaptive, and the actor runtime must all land
	// in the same neighborhood below the LP optimum.
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(5000, nil); err != nil {
		t.Fatal(err)
	}
	fixed := eng.Solution().Utility()

	ad := gradient.NewAdaptive(x, gradient.AdaptiveConfig{})
	ad.Run(5000)
	adaptive := ad.Solution().Utility()

	rt := dist.New(x, gradient.Config{Eta: 0.04})
	var distInfo gradient.StepInfo
	for i := 0; i < 5000; i++ {
		info, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		distInfo = info
	}

	for name, u := range map[string]float64{
		"gradient": fixed, "adaptive": adaptive, "dist": distInfo.Utility,
	} {
		if u > ref.Utility+1e-6 {
			t.Fatalf("%s utility %g exceeds the LP optimum %g", name, u, ref.Utility)
		}
		if u < 0.93*ref.Utility {
			t.Fatalf("%s utility %g below 93%% of the optimum %g", name, u, ref.Utility)
		}
	}
	if math.Abs(fixed-distInfo.Utility) > 1e-3*(1+fixed) {
		t.Fatalf("engine (%g) and actor runtime (%g) disagree", fixed, distInfo.Utility)
	}

	// Back-pressure's long-run cumulative utility approaches the same
	// optimum from below.
	bp := backpressure.New(x, backpressure.Config{})
	var cum float64
	for i := 0; i < 40000; i++ {
		cum = bp.Step().Cumulative
	}
	if cum > ref.Utility+1e-6 {
		t.Fatalf("back-pressure cumulative %g exceeds the optimum %g", cum, ref.Utility)
	}
	if cum < 0.8*ref.Utility {
		t.Fatalf("back-pressure cumulative %g below 80%% after 40k iterations", cum)
	}
}

func TestEndToEndPlanSurvivesQueueReplay(t *testing.T) {
	x := referenceInstance(t)
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(5000, nil); err != nil {
		t.Fatal(err)
	}
	sol := eng.Solution()

	// Decomposition covers the full offered rate.
	for j := range x.Commodities {
		paths, err := flow.DecomposePaths(sol, j)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, p := range paths {
			total += p.Rate
		}
		if lambda := x.Commodities[j].MaxRate; math.Abs(total-lambda) > 1e-6*(1+lambda) {
			t.Fatalf("commodity %d: decomposition covers %g of λ = %g", j, total, lambda)
		}
	}

	// The queue replay delivers the plan.
	res, err := qsim.Run(eng.Routing(), qsim.Config{Ticks: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x.Commodities {
		want := sol.AdmittedRate(j)
		if math.Abs(res.Delivered[j]-want) > 0.05*(1+want) {
			t.Fatalf("commodity %d: queue replay delivered %g, plan admitted %g",
				j, res.Delivered[j], want)
		}
	}
}

func TestEndToEndPenaltyFamiliesAgree(t *testing.T) {
	// DESIGN.md ablation: the barrier family changes the path to the
	// optimum but not the neighborhood it lands in (both are convex
	// barriers with the same pole).
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 20, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[string]float64, 2)
	for _, pen := range []utility.Penalty{utility.Reciprocal{}, utility.LogBarrier{}} {
		x, err := transform.Build(p, transform.Options{Epsilon: 0.2, Penalty: pen})
		if err != nil {
			t.Fatal(err)
		}
		eng := gradient.NewAdaptive(x, gradient.AdaptiveConfig{})
		last := eng.Run(8000)
		if !last.Feasible {
			t.Fatalf("%s: infeasible fixed point", pen.Name())
		}
		results[pen.Name()] = last.Utility
	}
	a, b := results["reciprocal"], results["log"]
	if math.Abs(a-b) > 0.15*(1+math.Max(a, b)) {
		t.Fatalf("penalty families land far apart: reciprocal %g, log %g", a, b)
	}
}

func TestEndToEndJSONRoundTripPreservesSolution(t *testing.T) {
	// Serialize the instance, parse it back, and verify the solvers see
	// the identical problem (same LP optimum to machine precision).
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 16, Commodities: 2, Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := stream.ParseProblem(data)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(pr *stream.Problem) float64 {
		x, err := transform.Build(pr, transform.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ref.Utility
	}
	if a, b := solve(p), solve(q); math.Abs(a-b) > 1e-9*(1+a) {
		t.Fatalf("round trip changed the optimum: %g vs %g", a, b)
	}
}
