// Validate: from optimization to deployment. Solves a §6-style random
// instance with the gradient algorithm, decomposes the fluid solution
// into concrete forwarding paths (what you would install as routing
// rules), and then replays the plan in the discrete-time queueing
// simulator under bursty Poisson arrivals to confirm the rates are
// actually achievable with bounded queues.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/qsim"
	"repro/internal/randnet"
	"repro/internal/transform"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	problem, err := randnet.Generate(randnet.Config{Seed: 2})
	if err != nil {
		return err
	}
	x, err := transform.Build(problem, transform.Options{Epsilon: 0.2})
	if err != nil {
		return err
	}

	// 1. Optimize.
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(5000, nil); err != nil {
		return err
	}
	sol := eng.Solution()
	fmt.Println("step 1 — optimize (gradient algorithm, 5000 iterations)")
	for j := range x.Commodities {
		c := &x.Commodities[j]
		fmt.Printf("  %s: admit %.2f of offered %.2f\n", c.Name, sol.AdmittedRate(j), c.MaxRate)
	}

	// 2. Decompose into forwarding paths.
	fmt.Println("\nstep 2 — decompose the flow into forwarding paths")
	for j := range x.Commodities {
		paths, err := flow.DecomposePaths(sol, j)
		if err != nil {
			return err
		}
		sort.Slice(paths, func(a, b int) bool { return paths[a].Rate > paths[b].Rate })
		shown := 0
		for _, p := range paths {
			if p.ViaDiffLink {
				fmt.Printf("  %s: %6.2f  rejected at admission\n", x.Commodities[j].Name, p.Rate)
				continue
			}
			if shown < 3 {
				fmt.Printf("  %s: %6.2f  via %s\n", x.Commodities[j].Name, p.Rate, pathString(x, p))
				shown++
			}
		}
		if extra := len(paths) - shown - 1; extra > 0 {
			fmt.Printf("  %s: (%d more paths)\n", x.Commodities[j].Name, extra)
		}
	}

	// 3. Replay in the queueing simulator with bursty arrivals.
	fmt.Println("\nstep 3 — replay under Poisson arrivals in the queue simulator")
	res, err := qsim.Run(eng.Routing(), qsim.Config{Ticks: 8000, Arrivals: qsim.Poisson, Seed: 7})
	if err != nil {
		return err
	}
	for j := range x.Commodities {
		fmt.Printf("  %s: delivered %.2f/tick (plan admitted %.2f), dropped %.2f\n",
			x.Commodities[j].Name, res.Delivered[j], sol.AdmittedRate(j), res.Dropped[j])
	}
	fmt.Printf("  queues: avg %.1f units, peak %.1f; mean sojourn ≈ %.1f ticks\n",
		res.AvgQueue, res.PeakQueue, res.AvgDelayTicks)
	fmt.Println("\nBounded queues + delivery matching the plan = the fluid optimum is deployable.")
	return nil
}

// pathString renders a path through original-graph node names, skipping
// the synthetic bandwidth and dummy nodes for readability.
func pathString(x *transform.Extended, p flow.PathFlow) string {
	s := ""
	for _, n := range p.Nodes {
		switch x.Kinds[n] {
		case transform.Bandwidth, transform.Dummy:
			continue
		}
		if s != "" {
			s += "→"
		}
		s += x.Names[n]
	}
	return s
}
