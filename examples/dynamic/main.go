// Dynamic tracking: the offered rates of a stream-processing system
// rarely hold still (§1 calls them "bursty and unpredictable"). This
// example modulates one commodity with a Markov-modulated rate process
// and re-runs the gradient algorithm each epoch, warm-started from the
// previous routing, showing how it tracks the moving optimum with a
// small per-epoch iteration budget.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/transform"
	"repro/internal/workload"
)

const (
	epochs     = 12
	iterBudget = 600 // gradient iterations per epoch
	seed       = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildAt regenerates the fixed topology with commodity S1's offered
// rate set to lambda. The generator is deterministic, so everything
// except MaxRate is identical across epochs.
func buildAt(lambda float64) (*transform.Extended, error) {
	p, err := randnet.Generate(randnet.Config{
		Seed: seed, Nodes: 24, Commodities: 2,
		// Generous capacities and cheap operators so the optimum is
		// admission-limited at low offered rates and capacity-limited
		// at high ones — otherwise a single tiny bottleneck would make
		// every epoch look identical.
		CapMin: 40, CapMax: 100, CostMin: 1, CostMax: 2,
	})
	if err != nil {
		return nil, err
	}
	p.Commodities[0].MaxRate = lambda
	return transform.Build(p, transform.Options{Epsilon: 0.2})
}

func run() error {
	// A bursty source: dwell ~3 epochs in each of three load levels,
	// chosen so the lower levels are admission-limited (the optimum
	// moves with λ) and the top level saturates the network.
	source := workload.NewMMPP([]float64{5, 15, 35}, 3, 99)

	fmt.Printf("tracking a bursty source over %d epochs (%d gradient iterations each)\n\n",
		epochs, iterBudget)
	fmt.Printf("%-6s %-8s %-9s %-9s %-8s %s\n",
		"epoch", "lambda", "optimal", "achieved", "ratio", "")

	var carried *flow.Routing
	for epoch := 0; epoch < epochs; epoch++ {
		lambda := source.Rate(epoch)
		x, err := buildAt(lambda)
		if err != nil {
			return err
		}
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			return err
		}

		var eng *gradient.Engine
		if carried == nil {
			eng = gradient.New(x, gradient.Config{Eta: 0.1})
		} else if eng, err = gradient.NewFrom(x, carried, gradient.Config{Eta: 0.1}); err != nil {
			return err
		}
		if _, err := eng.Run(iterBudget, nil); err != nil {
			return err
		}
		carried = eng.Routing()

		u := eng.Solution()
		ratio := u.Utility() / ref.Utility
		fmt.Printf("%-6d %-8.0f %-9.2f %-9.2f %-8.2f %s\n",
			epoch, lambda, ref.Utility, u.Utility(), ratio, bar(ratio))
	}
	fmt.Println("\nThe routing carried across epochs keeps the system near the moving")
	fmt.Println("optimum even though each epoch's budget is far below a cold start's needs.")
	return nil
}

// bar renders a crude ratio gauge for terminal output.
func bar(ratio float64) string {
	n := int(ratio * 30)
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	return strings.Repeat("#", n)
}
