// Admission-server quickstart: starts admissiond's engine in-process
// on a generated network, then drives it over real HTTP through a
// scripted day-in-the-life — rate bursts, a node failure, recovery,
// and a commodity departure — printing the evolving total utility and
// whether each re-solve warm-started. It finishes with the solver's
// introspection endpoints: /explain (why each commodity is admitted at
// its rate, and which resource binds it), /history (how utility and
// admission moved generation over generation), and /debug/spans (the
// full decision-lifecycle trace of the first mutation, from HTTP
// ingress through coalescing and the solve phases to snapshot publish,
// linked to the client's own W3C traceparent).
//
//	go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/trace"
	"repro/internal/randnet"
	"repro/internal/server"
)

const (
	seed    = 7
	timeout = 30 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := randnet.Generate(randnet.Config{
		Seed: seed, Nodes: 24, Commodities: 3,
		// Generous capacities so the system is admission-limited: rate
		// changes visibly move the optimum (same regime as E7).
		CapMin: 40, CapMax: 100, CostMin: 1, CostMax: 2,
		LambdaMin: 10, LambdaMax: 25,
	})
	if err != nil {
		return err
	}

	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, err := server.New(p, server.Options{
		Debounce: 5 * time.Millisecond,
		Recorder: rec,
		Trace:    trace.New(2048, 5),
		Spans:    span.New(1024, rec),
	})
	if err != nil {
		return err
	}
	defer s.Close()
	h, err := s.Serve("127.0.0.1:0", rec.Registry())
	if err != nil {
		return err
	}
	defer h.Close()
	base := "http://" + h.Addr()
	fmt.Printf("admission server on %s (also serving /metrics)\n\n", base)

	// Readiness the way an orchestrator would check it: poll /readyz
	// until the first snapshot has published.
	if err := waitReady(base); err != nil {
		return err
	}
	snap := s.Snapshot()
	report("initial solve", snap)

	// The first mutation carries an explicit W3C traceparent, as an
	// instrumented client would; its decision lifecycle is read back
	// from /debug/spans at the end.
	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	clientTraceparent := "00-" + clientTrace + "-00f067aa0ba902b7-01"

	// The scripted stream of events. Each step is one or more API
	// calls; the debounce window coalesces multi-call steps into a
	// single re-solve.
	steps := []struct {
		what string
		do   func() error
	}{
		{"S1 rate burst (λ ×2)", func() error {
			return patchTraced(base+"/v1/commodities/S1", map[string]any{
				"maxRate": p.Commodities[0].MaxRate * 2,
			}, clientTraceparent)
		}},
		{"S2 + S3 drop to trickle", func() error {
			if err := patch(base+"/v1/commodities/S2", map[string]any{"maxRate": 2.0}); err != nil {
				return err
			}
			return patch(base+"/v1/commodities/S3", map[string]any{"maxRate": 2.0})
		}},
		{"busiest server fails to 25% capacity", func() error {
			name, err := busiestServer(base)
			if err != nil {
				return err
			}
			fmt.Printf("    (failing %s)\n", name)
			return post(base+"/v1/nodes/"+name+"/capacity", map[string]any{"scale": 0.25})
		}},
		{"failed server recovers (×4)", func() error {
			name, err := busiestServer(base)
			if err != nil {
				return err
			}
			return post(base+"/v1/nodes/"+name+"/capacity", map[string]any{"scale": 4.0})
		}},
		{"S3 departs", func() error {
			req, err := http.NewRequest(http.MethodDelete, base+"/v1/commodities/S3", nil)
			if err != nil {
				return err
			}
			return expect2xx(req)
		}},
	}

	for _, step := range steps {
		gen := s.Snapshot().Generation
		if err := step.do(); err != nil {
			return fmt.Errorf("%s: %w", step.what, err)
		}
		snap, err = s.WaitForGeneration(gen+1, timeout)
		if err != nil {
			return err
		}
		report(step.what, snap)
	}

	if err := printExplain(base); err != nil {
		return err
	}
	if err := printHistory(base); err != nil {
		return err
	}
	return printSpans(base, clientTrace)
}

// waitReady polls /readyz until the server reports its first published
// snapshot.
func waitReady(base string) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// printSpans fetches the rate burst's decision lifecycle from
// /debug/spans and prints it as an indented tree: the root decision
// span (parented to the client's traceparent), the ingress and
// coalescing children, the solve with its phase breakdown, and the
// publish that resolved it.
func printSpans(base, trace string) error {
	resp, err := http.Get(base + "/debug/spans?trace=" + trace)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Spans []struct {
			ID         string            `json:"span"`
			Parent     string            `json:"parent"`
			Name       string            `json:"name"`
			DurationMs float64           `json:"durationMs"`
			Attrs      map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	fmt.Printf("\ndecision lifecycle for trace %s (GET /debug/spans?trace=...):\n", trace)
	ids := map[string]bool{}
	children := map[string][]int{}
	for i, sp := range out.Spans {
		ids[sp.ID] = true
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var walk func(id string, depth int)
	walk = func(id string, depth int) {
		idx := children[id]
		sort.Slice(idx, func(a, b int) bool { return out.Spans[idx[a]].Name < out.Spans[idx[b]].Name })
		for _, i := range idx {
			sp := out.Spans[i]
			extra := ""
			if lat := sp.Attrs["decision_latency_s"]; lat != "" {
				extra += fmt.Sprintf("  decision_latency_s=%s gen=%s", lat, sp.Attrs["generation"])
			}
			if n := sp.Attrs["mutations_coalesced"]; n != "" {
				extra += fmt.Sprintf("  mutations_coalesced=%s", n)
			}
			if st := sp.Attrs["start"]; st != "" {
				extra += fmt.Sprintf("  start=%s", st)
			}
			fmt.Printf("  %*s%-11s %8.2fms%s\n", 2*depth, "", sp.Name, sp.DurationMs, extra)
			walk(sp.ID, depth+1)
		}
	}
	// Roots are spans whose parent is outside the retained set (the
	// client's own span, or none).
	for parent := range children {
		if !ids[parent] {
			walk(parent, 0)
		}
	}
	return nil
}

// printExplain asks /explain why each surviving commodity is admitted
// at its rate, and what binds it.
func printExplain(base string) error {
	resp, err := http.Get(base + "/explain")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Explain []struct {
			Name     string  `json:"name"`
			Offered  float64 `json:"offered"`
			Admitted float64 `json:"admitted"`
			Gap      float64 `json:"gap"`
			Binding  []struct {
				Name        string  `json:"name"`
				Kind        string  `json:"kind"`
				Price       float64 `json:"price"`
				Utilization float64 `json:"utilization"`
			} `json:"binding"`
		} `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	fmt.Println("\nbottleneck attribution (GET /explain):")
	for _, ce := range out.Explain {
		why := "admission limited only by its offered rate"
		if len(ce.Binding) > 0 {
			b := ce.Binding[0]
			why = fmt.Sprintf("bound by %s %s (shadow price %.4f, %.0f%% utilized)",
				b.Kind, b.Name, b.Price, 100*b.Utilization)
		}
		fmt.Printf("  %-6s admitted %6.2f of %6.2f  gap %+.4f  — %s\n",
			ce.Name, ce.Admitted, ce.Offered, ce.Gap, why)
	}
	return nil
}

// printHistory shows how the operating point moved across the script's
// generations.
func printHistory(base string) error {
	resp, err := http.Get(base + "/history")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Generations []struct {
			Generation   int64   `json:"generation"`
			Warm         bool    `json:"warm"`
			Utility      float64 `json:"utility"`
			DeltaUtility float64 `json:"deltaUtility"`
		} `json:"generations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	fmt.Println("\ngeneration history (GET /history):")
	for _, g := range out.Generations {
		start := "cold"
		if g.Warm {
			start = "warm"
		}
		fmt.Printf("  gen %2d  utility %8.3f  Δ %+8.3f  (%s)\n",
			g.Generation, g.Utility, g.DeltaUtility, start)
	}
	return nil
}

// report prints one snapshot line: the service's evolving operating
// point.
func report(what string, snap *server.Snapshot) {
	start := "cold"
	if snap.Warm {
		start = "warm"
	}
	fmt.Printf("gen %2d  %-38s  utility %8.3f  (%s, %d iters, %.1fms)\n",
		snap.Generation, what, snap.Utility, start, snap.Iterations, 1000*snap.SolveSeconds)
	for _, c := range snap.Commodities {
		fmt.Printf("         %-6s offered %7.2f  admitted %7.2f\n", c.Name, c.Offered, c.Admitted)
	}
}

// busiestServer asks /v1/usage for the most utilized server.
func busiestServer(base string) (string, error) {
	resp, err := http.Get(base + "/v1/usage")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Usage []struct {
			Name        string  `json:"Name"`
			Kind        string  `json:"Kind"`
			Utilization float64 `json:"Utilization"`
		} `json:"usage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	best, bestU := "", -1.0
	for _, u := range out.Usage {
		if u.Kind == "server" && u.Utilization > bestU {
			best, bestU = u.Name, u.Utilization
		}
	}
	if best == "" {
		return "", fmt.Errorf("no server usage reported")
	}
	return best, nil
}

func patch(url string, body map[string]any) error {
	return patchTraced(url, body, "")
}

func patchTraced(url string, body map[string]any, traceparent string) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	return expect2xx(req)
}

func post(url string, body map[string]any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	return expect2xx(req)
}

func expect2xx(req *http.Request) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s %s: status %d: %s", req.Method, req.URL.Path, resp.StatusCode, buf.String())
	}
	return nil
}
