// Admission control under overload with heterogeneous utilities: three
// video-analytics pipelines contend for one shared GPU cluster. A
// throughput-maximizing controller starves the low-volume streams; the
// paper's max-utility controller with concave utilities sheds load
// proportionally instead. This is the fairness argument of §2's
// "decreasing marginal returns".
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/utility"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildProblem wires three camera feeds through a shared detection
// cluster into per-tenant sinks. The cluster has capacity 30; the
// offered rates total 95, so roughly two-thirds of the load must be
// rejected somewhere.
func buildProblem(u func(j int) utility.Function) (*stream.Problem, error) {
	net := stream.NewNetwork()
	cluster, err := net.AddServer("gpu-cluster", 30)
	if err != nil {
		return nil, err
	}
	offered := []float64{60, 25, 10} // a heavy, a medium, and a light tenant
	p := stream.NewProblem(net)
	for j, lambda := range offered {
		name := fmt.Sprintf("camera%d", j+1)
		src, err := net.AddServer(name, 100)
		if err != nil {
			return nil, err
		}
		sink, err := net.AddSink("alerts" + name)
		if err != nil {
			return nil, err
		}
		e1, err := net.AddLink(src, cluster, 100)
		if err != nil {
			return nil, err
		}
		e2, err := net.AddLink(cluster, sink, 100)
		if err != nil {
			return nil, err
		}
		c, err := p.AddCommodity(name, src, sink, lambda, u(j))
		if err != nil {
			return nil, err
		}
		// Decode upstream (cheap), detect on the cluster (β < 1: the
		// detector emits compact events, not frames).
		for e, params := range map[graph.EdgeID]stream.EdgeParams{
			e1: {Beta: 1, Cost: 1},
			e2: {Beta: 0.1, Cost: 1},
		} {
			if err := p.SetEdge(c, e, params); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

func solveWith(label string, u func(j int) utility.Function) error {
	problem, err := buildProblem(u)
	if err != nil {
		return err
	}
	res, err := core.Solve(problem, core.Options{
		Algorithm: core.Reference, // exact optimum; the point is the objective
		Segments:  400,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", label)
	offered := []float64{60, 25, 10}
	for j, name := range res.Commodities {
		fmt.Printf("  %-8s offered %5.1f  admitted %6.2f  (%.0f%%)\n",
			name, offered[j], res.Admitted[j], 100*res.Admitted[j]/offered[j])
	}
	fmt.Println()
	return nil
}

func run() error {
	fmt.Println("Shared cluster capacity 30; offered load 95 — someone must be shed.")
	fmt.Println()
	// Linear utilities = maximize raw throughput: capacity goes to
	// whoever offers the most; light tenants can be starved entirely.
	if err := solveWith("max-throughput (linear utilities):", func(int) utility.Function {
		return utility.Linear{Slope: 1}
	}); err != nil {
		return err
	}
	// Log utilities = proportional fairness: every tenant keeps a
	// meaningful share, heavy tenants absorb most of the shedding.
	if err := solveWith("max-utility (log utilities, proportional fairness):", func(int) utility.Function {
		return utility.Log{Weight: 10, Scale: 1}
	}); err != nil {
		return err
	}
	// And the distributed algorithm reaches the same fair point without
	// a central solver.
	problem, err := buildProblem(func(int) utility.Function {
		return utility.Log{Weight: 10, Scale: 1}
	})
	if err != nil {
		return err
	}
	res, err := core.Solve(problem, core.Options{
		MaxIters:      30000,
		Eta:           0.1,
		Epsilon:       0.05,
		WithReference: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distributed gradient algorithm (log utilities):\n")
	for j, name := range res.Commodities {
		fmt.Printf("  %-8s admitted %6.2f\n", name, res.Admitted[j])
	}
	fmt.Printf("  utility %.3f of optimal %.3f (%.1f%%)\n",
		res.Utility, res.ReferenceUtility, 100*res.Utility/res.ReferenceUtility)
	return nil
}
