// Quickstart: solve the paper's Figure-1 scenario — eight servers
// running two pipelines (S1 = A→B→C→D solid, S2 = G→E→F→H dashed) that
// share servers 3 and 5 — with the distributed gradient algorithm, and
// compare against the LP optimum.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the Figure-1 topology. Task B halves its stream (a filter),
	// E doubles it (a decrypt-style expansion); costs differ per task.
	problem, err := stream.Figure1(stream.Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      40,
		MaxRate1:       20, // offered rate of S1 — deliberately more than fits
		MaxRate2:       20,
		TaskBeta: map[string]float64{
			"B": 0.5, // filter: shrink
			"E": 2.0, // decrypt: expand
		},
		TaskCost: map[string]float64{
			"A": 1, "B": 2, "C": 1, "D": 1,
			"G": 1, "E": 3, "F": 1, "H": 1,
		},
	})
	if err != nil {
		return err
	}

	// Solve with the gradient algorithm plus the LP reference for
	// comparison. A small barrier (ε = 0.05) fits tightly on this small
	// network; η of the same magnitude keeps the steps stable.
	res, err := core.Solve(problem, core.Options{
		MaxIters:      40000,
		Eta:           0.05,
		Epsilon:       0.05,
		WithReference: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("Figure-1 scenario: 8 servers, 2 streams, shared servers 3 and 5\n\n")
	fmt.Printf("gradient utility: %.3f  (LP optimum %.3f, achieved %.1f%%)\n",
		res.Utility, res.ReferenceUtility, 100*res.Utility/res.ReferenceUtility)
	for j, name := range res.Commodities {
		fmt.Printf("  %s: admitted %.3f of offered 20\n", name, res.Admitted[j])
	}

	// Where did the capacity go? Print the most loaded resources.
	sort.Slice(res.Usage, func(a, b int) bool {
		return res.Usage[a].Utilization > res.Usage[b].Utilization
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nresource\tkind\tutilization")
	for _, u := range res.Usage {
		if u.Utilization < 0.30 {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\n", u.Name, u.Kind, 100*u.Utilization)
	}
	return w.Flush()
}
